#include "serve/matrix_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "formats/mm_io.hpp"
#include "formats/serialize.hpp"
#include "formats/validate.hpp"
#include "gen/suite.hpp"
#include "parallel/atomics.hpp"

namespace tilespmspv::serve {

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string content_key(const std::string& serialized_bytes) {
  std::uint64_t h = fnv1a64(serialized_bytes.data(), serialized_bytes.size());
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[h & 0xf];
    h >>= 4;
  }
  return out;
}

namespace {

/// Approximate resident footprint of a tiled matrix: the payload vectors
/// (values, indices, pointers, side COO, run list, strategy bytes).
std::size_t tile_matrix_bytes(const TileMatrix<value_t>& m) {
  auto vec_bytes = [](const auto& v) {
    return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t b = 0;
  b += vec_bytes(m.tile_row_ptr) + vec_bytes(m.tile_col_id);
  b += vec_bytes(m.tile_nnz_ptr) + vec_bytes(m.intra_row_ptr);
  b += vec_bytes(m.local_col) + vec_bytes(m.vals);
  b += vec_bytes(m.extracted.row_idx) + vec_bytes(m.extracted.col_idx) +
       vec_bytes(m.extracted.vals);
  b += vec_bytes(m.side_col_ptr) + vec_bytes(m.side_row_idx) +
       vec_bytes(m.side_vals) + vec_bytes(m.side_row_ptr);
  b += vec_bytes(m.row_chunk_ptr) + vec_bytes(m.run_ptr) +
       vec_bytes(m.row_runs) + vec_bytes(m.tile_strategy);
  return b;
}

}  // namespace

SnapshotPtr build_snapshot(const Csr<value_t>& a, std::string key,
                           std::string alias, std::string source,
                           const SpmspvConfig& cfg) {
  // Trust boundary: the matrix may come from an arbitrary client upload.
  const ValidationResult vr = validate_csr(a);
  if (!vr.ok()) {
    throw std::invalid_argument("matrix failed validation: " + vr.message());
  }
  auto snap = std::make_shared<MatrixSnapshot>();
  snap->key = std::move(key);
  snap->alias = std::move(alias);
  snap->source = std::move(source);
  snap->rows = a.rows;
  snap->cols = a.cols;
  snap->nnz = a.nnz();
  snap->tiled = TileMatrix<value_t>::from_csr(a, cfg.nt, cfg.extract_threshold);
  if (a.rows == a.cols) {
    // BFS expand operand: unit-weight tiled transpose (see apps/ms_bfs.hpp).
    Csr<value_t> at = a.transpose();
    for (auto& v : at.vals) v = value_t{1};
    snap->tiled_t =
        TileMatrix<value_t>::from_csr(at, cfg.nt, cfg.extract_threshold);
    snap->has_transpose = true;
  }
  snap->bytes = sizeof(MatrixSnapshot) + tile_matrix_bytes(snap->tiled) +
                tile_matrix_bytes(snap->tiled_t);
  return snap;
}

SnapshotPtr load_snapshot_file(const std::string& path, std::string alias,
                               const SpmspvConfig& cfg) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open matrix file: " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = raw.str();
  std::string key = content_key(bytes);

  std::istringstream stream(bytes);
  const SerializedKind kind = probe_serialized_kind(stream);
  Csr<value_t> a;
  if (kind == SerializedKind::kCsr) {
    a = read_csr(stream);  // validating reader
  } else if (kind == SerializedKind::kTileMatrix) {
    throw std::runtime_error(
        "tiled-matrix files are not servable directly; serve the CSR or "
        "MatrixMarket source instead: " +
        path);
  } else {
    a = Csr<value_t>::from_coo(read_matrix_market(stream));
  }
  return build_snapshot(a, std::move(key), std::move(alias), "file:" + path,
                        cfg);
}

SnapshotPtr load_snapshot_suite(const std::string& name, std::string alias,
                                const SpmspvConfig& cfg) {
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
  // Canonical bytes for the content key: the serialized CSR form, so the
  // same suite matrix loaded under two aliases shares one cache entry.
  std::ostringstream bytes;
  write_csr(bytes, a);
  return build_snapshot(a, content_key(bytes.str()), std::move(alias),
                        "suite:" + name, cfg);
}

SnapshotPtr MatrixStore::get(const std::string& key_or_alias) {
  std::lock_guard<std::mutex> g(mu_);
  Entry* e = find_locked(key_or_alias);
  if (e == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  e->tick = ++tick_;
  spin_lock(&e->lock);
  SnapshotPtr snap = e->snap;  // refcount bump: query owns this snapshot
  spin_unlock(&e->lock);
  return snap;
}

std::string MatrixStore::put(SnapshotPtr snap,
                             std::vector<std::string>* evicted) {
  std::string key = snap->key;
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [k, e] : entries_) {
    if (k != key) continue;
    // Same content already resident: epoch-style swap. Readers that copied
    // the old pointer finish on the old snapshot; the swap itself sits
    // behind the entry spin lock so a concurrent get() never observes a
    // half-written pointer.
    auto next = std::make_shared<MatrixSnapshot>(*snap);
    spin_lock(&e->lock);
    next->epoch = e->snap->epoch + 1;
    resident_bytes_ -= e->snap->bytes;
    resident_bytes_ += next->bytes;
    e->snap = std::move(next);
    spin_unlock(&e->lock);
    e->tick = ++tick_;
    ++swaps_;
    return key;
  }
  auto e = std::make_unique<Entry>();
  resident_bytes_ += snap->bytes;
  e->snap = std::move(snap);
  e->tick = ++tick_;
  entries_.emplace_back(key, std::move(e));
  evict_locked(key, evicted);
  return key;
}

bool MatrixStore::erase(const std::string& key_or_alias) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first != key_or_alias && it->second->snap->alias != key_or_alias) {
      continue;
    }
    resident_bytes_ -= it->second->snap->bytes;
    entries_.erase(it);
    return true;
  }
  return false;
}

std::vector<MatrixStore::Info> MatrixStore::list() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Info> out;
  out.reserve(entries_.size());
  for (const auto& [k, e] : entries_) {
    const MatrixSnapshot& s = *e->snap;
    out.push_back(
        {k, s.alias, s.source, s.rows, s.cols, s.nnz, s.bytes, s.epoch});
  }
  return out;
}

MatrixStore::Stats MatrixStore::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return {hits_, misses_,          evictions_,
          swaps_, resident_bytes_, entries_.size()};
}

MatrixStore::Entry* MatrixStore::find_locked(const std::string& key_or_alias) {
  for (auto& [k, e] : entries_) {
    if (k == key_or_alias || e->snap->alias == key_or_alias) return e.get();
  }
  return nullptr;
}

void MatrixStore::evict_locked(const std::string& keep_key,
                               std::vector<std::string>* evicted) {
  while (resident_bytes_ > capacity_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) continue;
      if (victim == entries_.end() || it->second->tick < victim->second->tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    resident_bytes_ -= victim->second->snap->bytes;
    if (evicted != nullptr) evicted->push_back(victim->first);
    entries_.erase(victim);
    ++evictions_;
  }
}

}  // namespace tilespmspv::serve
