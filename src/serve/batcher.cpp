#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "apps/ms_bfs.hpp"
#include "core/tile_spmspm.hpp"
#include "tile/tile_vector_block.hpp"

namespace tilespmspv::serve {

namespace {

/// Queue key: snapshot identity. Epoch is part of it so a reloaded matrix
/// never shares a queue (and thus a flush) with its predecessor.
std::string queue_key(const MatrixSnapshot& s) {
  return s.key + "@" + std::to_string(s.epoch);
}

constexpr int kMaxLanes = 64;  // TileVectorBlock lane width

}  // namespace

Batcher::Batcher(const BatchConfig& cfg, ThreadPool* pool)
    : cfg_(cfg), pool_(pool) {
  cfg_.max_k = std::clamp(cfg_.max_k, 1, kMaxLanes);
  if (cfg_.deadline_ms < 0.0) cfg_.deadline_ms = 0.0;
  flusher_ = std::thread([this] { flusher_loop(); });
}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  flusher_.join();
}

std::future<SparseVec<value_t>> Batcher::submit_spmspv(SnapshotPtr snap,
                                                       SparseVec<value_t> x) {
  std::promise<SparseVec<value_t>> p;
  std::future<SparseVec<value_t>> fut = p.get_future();
  if (!snap || x.n != snap->cols) {
    std::lock_guard<std::mutex> g(mu_);
    ++spmspv_queries_;
    ++errors_;
    p.set_exception(std::make_exception_ptr(std::invalid_argument(
        "spmspv: vector length does not match matrix columns")));
    return fut;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    ++spmspv_queries_;
    const std::string key = queue_key(*snap);
    SpmspvQueue* q = nullptr;
    for (auto& [k, qq] : spmspv_queues_) {
      if (k == key) {
        q = &qq;
        break;
      }
    }
    if (q == nullptr) {
      spmspv_queues_.emplace_back(key, SpmspvQueue{});
      q = &spmspv_queues_.back().second;
      q->snap = std::move(snap);
      q->oldest = std::chrono::steady_clock::now();
    }
    q->xs.push_back(std::move(x));
    q->promises.push_back(std::move(p));
  }
  cv_.notify_one();
  return fut;
}

std::future<std::vector<index_t>> Batcher::submit_bfs(SnapshotPtr snap,
                                                      index_t source) {
  std::promise<std::vector<index_t>> p;
  std::future<std::vector<index_t>> fut = p.get_future();
  if (!snap || !snap->has_transpose || source < 0 || source >= snap->rows) {
    std::lock_guard<std::mutex> g(mu_);
    ++bfs_queries_;
    ++errors_;
    p.set_exception(std::make_exception_ptr(std::invalid_argument(
        "bfs: matrix must be square and source in range")));
    return fut;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    ++bfs_queries_;
    const std::string key = queue_key(*snap);
    BfsQueue* q = nullptr;
    for (auto& [k, qq] : bfs_queues_) {
      if (k == key) {
        q = &qq;
        break;
      }
    }
    if (q == nullptr) {
      bfs_queues_.emplace_back(key, BfsQueue{});
      q = &bfs_queues_.back().second;
      q->snap = std::move(snap);
      q->oldest = std::chrono::steady_clock::now();
    }
    q->sources.push_back(source);
    q->promises.push_back(std::move(p));
  }
  cv_.notify_one();
  return fut;
}

Batcher::Stats Batcher::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return {spmspv_queries_, bfs_queries_,  flushes_,
          batched_flushes_, max_flush_k_, errors_};
}

void Batcher::flusher_loop() {
  using clock = std::chrono::steady_clock;
  const auto deadline = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double, std::milli>(cfg_.deadline_ms));
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Collect every queue that is full, past deadline, or being drained
    // at shutdown; execute outside the lock so submits stay non-blocking.
    const auto now = clock::now();
    std::vector<SpmspvQueue> sp_ready;
    std::vector<BfsQueue> bfs_ready;
    for (std::size_t i = 0; i < spmspv_queues_.size();) {
      SpmspvQueue& q = spmspv_queues_[i].second;
      if (stop_ || q.xs.size() >= static_cast<std::size_t>(cfg_.max_k) ||
          now - q.oldest >= deadline) {
        sp_ready.push_back(std::move(q));
        spmspv_queues_.erase(spmspv_queues_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < bfs_queues_.size();) {
      BfsQueue& q = bfs_queues_[i].second;
      if (stop_ || q.sources.size() >= static_cast<std::size_t>(cfg_.max_k) ||
          now - q.oldest >= deadline) {
        bfs_ready.push_back(std::move(q));
        bfs_queues_.erase(bfs_queues_.begin() +
                          static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    if (!sp_ready.empty() || !bfs_ready.empty()) {
      lk.unlock();
      for (auto& q : sp_ready) flush_spmspv(std::move(q));
      for (auto& q : bfs_ready) flush_bfs(std::move(q));
      lk.lock();
      continue;  // re-examine: more work may have queued while flushing
    }

    if (stop_ && spmspv_queues_.empty() && bfs_queues_.empty()) return;

    // Sleep until the nearest deadline (or a submit/stop notification).
    auto wake = clock::time_point::max();
    for (const auto& [k, q] : spmspv_queues_) {
      wake = std::min(wake, q.oldest + deadline);
    }
    for (const auto& [k, q] : bfs_queues_) {
      wake = std::min(wake, q.oldest + deadline);
    }
    if (wake == clock::time_point::max()) {
      cv_.wait(lk);
    } else {
      cv_.wait_until(lk, wake);
    }
  }
}

void Batcher::flush_spmspv(SpmspvQueue q) {
  const std::size_t total = q.xs.size();
  // A queue can outgrow one block between flusher wakeups; chunk at the
  // lane width so every engine call stays within 64 lanes.
  for (std::size_t lo = 0; lo < total; lo += kMaxLanes) {
    const std::size_t hi = std::min(total, lo + kMaxLanes);
    const std::size_t k = hi - lo;
    try {
      std::vector<SparseVec<value_t>> xs(
          std::make_move_iterator(q.xs.begin() +
                                  static_cast<std::ptrdiff_t>(lo)),
          std::make_move_iterator(q.xs.begin() +
                                  static_cast<std::ptrdiff_t>(hi)));
      const TileVectorBlock<value_t> xb =
          TileVectorBlock<value_t>::from_sparse(xs, q.snap->tiled.nt, pool_);
      std::vector<SparseVec<value_t>> ys =
          tile_spmspm(q.snap->tiled, xb, pool_);
      for (std::size_t i = 0; i < k; ++i) {
        q.promises[lo + i].set_value(std::move(ys[i]));
      }
      std::lock_guard<std::mutex> g(mu_);
      ++flushes_;
      if (k > 1) ++batched_flushes_;
      max_flush_k_ = std::max<std::uint64_t>(max_flush_k_, k);
    } catch (...) {
      for (std::size_t i = lo; i < hi; ++i) {
        q.promises[i].set_exception(std::current_exception());
      }
      std::lock_guard<std::mutex> g(mu_);
      ++flushes_;
      errors_ += k;
    }
  }
}

void Batcher::flush_bfs(BfsQueue q) {
  const std::size_t total = q.sources.size();
  for (std::size_t lo = 0; lo < total; lo += kMaxLanes) {
    const std::size_t hi = std::min(total, lo + kMaxLanes);
    const std::size_t k = hi - lo;
    try {
      const std::vector<index_t> sources(
          q.sources.begin() + static_cast<std::ptrdiff_t>(lo),
          q.sources.begin() + static_cast<std::ptrdiff_t>(hi));
      MsBfsResult r = ms_bfs_tiled_on(q.snap->tiled_t, sources, pool_);
      for (std::size_t i = 0; i < k; ++i) {
        q.promises[lo + i].set_value(std::move(r.levels[i]));
      }
      std::lock_guard<std::mutex> g(mu_);
      ++flushes_;
      if (k > 1) ++batched_flushes_;
      max_flush_k_ = std::max<std::uint64_t>(max_flush_k_, k);
    } catch (...) {
      for (std::size_t i = lo; i < hi; ++i) {
        q.promises[i].set_exception(std::current_exception());
      }
      std::lock_guard<std::mutex> g(mu_);
      ++flushes_;
      errors_ += k;
    }
  }
}

}  // namespace tilespmspv::serve
