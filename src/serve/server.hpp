// The tilespmspv_serve request layer: a newline-delimited JSON protocol
// over a unix-domain socket. Each request is one line, each response one
// line; `handle_line` is the whole protocol, so tests and the serve_smoke
// bench drive the daemon in-process while tools/tilespmspv_serve.cpp adds
// the socket transport around the same function.
//
// Ops: ping, load (path|suite [+alias]), unload, reload, list, spmspv
// (indices/values), bfs (source), stats, shutdown. Every response carries
// "ok"; failures add "error" and never tear down the connection.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/spmspv.hpp"
#include "obs/bench_report.hpp"
#include "obs/json_value.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "serve/matrix_store.hpp"

namespace tilespmspv::serve {

struct ServeConfig {
  std::string socket_path = "/tmp/tilespmspv.sock";
  std::size_t cache_bytes = 256ull << 20;  // matrix residency budget
  int batch_k = 16;                        // admission flush threshold
  double deadline_ms = 2.0;                // admission flush deadline
  std::size_t threads = 0;                 // kernel pool; 0 = hardware
  SpmspvConfig spmspv;                     // conversion parameters
};

/// Per-op serving statistics, exported by the `stats` op. Guarded by one
/// mutex (request rates are far below kernel work; contention is nil).
class ServerStats {
 public:
  void record(const std::string& op, double ms, bool ok);
  void fill(obs::MetricsRegistry* reg) const;

 private:
  struct OpStats {
    std::string op;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    obs::LatencyHistogram latency;
  };
  mutable std::mutex mu_;
  std::vector<OpStats> ops_;
};

/// The daemon core. Construction builds the kernel pool, store, and
/// batcher; start()/stop() manage the socket transport. handle_line is
/// safe to call from any thread, with or without the transport running.
class Server {
 public:
  explicit Server(const ServeConfig& cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// One protocol round: request line in (no trailing newline needed),
  /// response line out (single line, no newline). Never throws.
  std::string handle_line(const std::string& line);

  /// Binds + listens on cfg.socket_path and starts the accept loop.
  bool start(std::string* err);

  /// Stops the transport: closes the listener and live connections, joins
  /// every thread. Idempotent; also run by the destructor.
  void stop();

  /// True once a `shutdown` request has been handled.
  bool shutdown_requested() const;

  const ServeConfig& config() const { return cfg_; }

 private:
  std::string handle_request(const std::string& line);
  std::string do_load(const obs::JsonValue& req);
  std::string do_unload(const obs::JsonValue& req);
  std::string do_list();
  std::string do_spmspv(const obs::JsonValue& req);
  std::string do_bfs(const obs::JsonValue& req);
  std::string do_stats();

  void accept_loop();
  void connection_loop(int fd);

  ServeConfig cfg_;
  ThreadPool pool_;
  MatrixStore store_;
  Batcher batcher_;
  ServerStats stats_;

  mutable std::mutex mu_;  // transport + shutdown state
  bool shutdown_requested_ = false;
  bool transport_running_ = false;
  int listen_fd_ = -1;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread accept_thread_;
};

}  // namespace tilespmspv::serve
