// Format advisor: recommends a storage configuration from the tile
// statistics of a matrix. The paper's introduction motivates this
// explicitly — "it is well known that no one matrix storage formulation
// works for any sparsity structure, but there currently lacks work
// considering effective format for SpMSpV" — and the repo's ablations
// quantify the trade-offs the advisor encodes:
//   - intra-tile layout: packed byte beats intra-CSR below ~8 nnz/tile
//     (bench_ablation_intra_tile);
//   - extraction threshold: worth raising when many near-empty tiles
//     exist (bench_ablation_coo_extract);
//   - tile size: larger tiles when nonzeros concentrate (Table 2);
//   - plain CSR when tiling adds structure without density (uniform
//     scatter with ~1 nnz/tile gains nothing from tiles).
#pragma once

#include "tile/tile_stats.hpp"
#include "util/types.hpp"

namespace tilespmspv {

enum class IntraTileLayout { kIntraCsr, kPackedByte };
enum class StorageFamily { kTiled, kPlainCsr };

struct FormatAdvice {
  StorageFamily family = StorageFamily::kTiled;
  IntraTileLayout layout = IntraTileLayout::kIntraCsr;
  index_t nt = 16;
  index_t extract_threshold = 2;
  /// Human-readable justification (printed by the CLI).
  const char* rationale = "";
};

/// Tunable decision boundaries (defaults fitted from the ablation benches
/// on this substrate).
struct AdvisorThresholds {
  double packed_below_nnz_per_tile = 16.0;
  double plain_csr_below_nnz_per_tile = 1.5;
  double raise_extract_when_le2_fraction = 0.5;
  index_t large_order = 100000;  // prefer nt=32 beyond this
};

template <typename T>
FormatAdvice advise_format(const Csr<T>& a, AdvisorThresholds th = {}) {
  FormatAdvice advice;
  const TileStats s16 = tile_stats(a, 16);

  if (s16.nonempty_tiles > 0 &&
      s16.avg_nnz_per_tile < th.plain_csr_below_nnz_per_tile) {
    advice.family = StorageFamily::kPlainCsr;
    advice.rationale =
        "near-singleton tiles everywhere: tiling adds metadata without "
        "locality; stay on plain CSR (or tile with full extraction)";
    return advice;
  }

  advice.family = StorageFamily::kTiled;
  advice.nt = a.rows > th.large_order || a.cols > th.large_order ? 32 : 16;
  advice.layout = s16.avg_nnz_per_tile < th.packed_below_nnz_per_tile
                      ? IntraTileLayout::kPackedByte
                      : IntraTileLayout::kIntraCsr;

  const double le2_fraction =
      s16.nonempty_tiles == 0
          ? 0.0
          : static_cast<double>(s16.tiles_le2) / s16.nonempty_tiles;
  advice.extract_threshold =
      le2_fraction > th.raise_extract_when_le2_fraction ? 4 : 2;

  advice.rationale =
      advice.layout == IntraTileLayout::kPackedByte
          ? "sparse tiles: packed-byte payload, per-nonzero metadata only"
          : "dense tiles: intra-CSR payload, row runs amortize the pointer";
  return advice;
}

inline const char* to_string(IntraTileLayout l) {
  return l == IntraTileLayout::kPackedByte ? "packed-byte" : "intra-CSR";
}

inline const char* to_string(StorageFamily f) {
  return f == StorageFamily::kTiled ? "tiled" : "plain-CSR";
}

}  // namespace tilespmspv
