// Tiled sparse vector storage (paper §3.2.2, Fig. 3).
//
// A length-n vector is cut into n/nt tiles. Empty tiles are dropped; the
// remaining tiles are stored densely and contiguously in `x_tile`, while
// `x_ptr` maps each tile slot to its compact position (or -1 when empty).
// Element i is recovered as x_tile[x_ptr[i/nt]*nt + i%nt] — the O(1)
// positioning the TileSpMSpV kernel relies on to skip work.
#pragma once

#include <cassert>
#include <type_traits>
#include <vector>

#include "formats/sparse_vector.hpp"
#include "formats/validate.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct TileVector {
  // The empty-tile sentinel (paper Fig. 3) relies on x_ptr holding -1 for
  // dropped slots, so the index type must be signed.
  static_assert(std::is_signed_v<index_t> && kEmptyTile < 0,
                "x_ptr needs a negative empty-tile sentinel");

  index_t n = 0;              // logical length
  index_t nt = 16;            // tile size
  index_t nnz = 0;            // nonzeros of the source vector
  std::vector<index_t> x_ptr; // ceil(n/nt) slots: compact index or kEmptyTile
  std::vector<T> x_tile;      // non-empty tiles, nt values each

  /// True vector sparsity nnz/n (the quantity the paper's kernel
  /// selection compares against its thresholds).
  double sparsity() const {
    return n == 0 ? 0.0 : static_cast<double>(nnz) / static_cast<double>(n);
  }

  index_t num_tiles() const { return static_cast<index_t>(x_ptr.size()); }
  index_t num_nonempty_tiles() const {
    return static_cast<index_t>(x_tile.size()) / nt;
  }

  /// Fraction of tile slots that are non-empty — the quantity the paper's
  /// kernel-selection heuristics reason about.
  double tile_density() const {
    return x_ptr.empty() ? 0.0
                         : static_cast<double>(num_nonempty_tiles()) /
                               static_cast<double>(num_tiles());
  }

  /// O(1) random access (zero for elements in empty tiles).
  T at(index_t i) const {
    assert(i >= 0 && i < n);
    const index_t slot = x_ptr[i / nt];
    return slot == kEmptyTile ? T{} : x_tile[slot * nt + i % nt];
  }

  /// Builds the tiled form from a plain sparse vector. Tolerates input
  /// that falls short of SparseVec's invariant — unsorted indices,
  /// duplicates (later entries win) and explicit zero values: slot
  /// numbering is derived in tile order regardless of input order, and
  /// nnz counts the nonzeros actually stored, so the result always meets
  /// the tiled validator's invariants.
  static TileVector from_sparse(const SparseVec<T>& x, index_t nt) {
    TileVector v;
    v.n = x.n;
    v.nt = nt;
    const index_t tiles = ceil_div(x.n, nt);
    v.x_ptr.assign(tiles, kEmptyTile);
    // Pass 1: mark the touched tiles, then number the compact slots in a
    // separate tile-order scan (the paper's 0,1,2,... numbering) — a
    // single first-appearance pass would scramble the order for unsorted
    // input.
    for (index_t i : x.idx) {
      assert(i >= 0 && i < x.n);
      v.x_ptr[i / nt] = 0;
    }
    index_t slots = 0;
    for (index_t t = 0; t < tiles; ++t) {
      if (v.x_ptr[t] != kEmptyTile) v.x_ptr[t] = slots++;
    }
    // A nonzero in the last partial tile must not read past n, so tiles are
    // zero-padded to a full nt.
    v.x_tile.assign(static_cast<std::size_t>(slots) * nt, T{});
    index_t stored = 0;
    for (std::size_t k = 0; k < x.idx.size(); ++k) {
      const index_t i = x.idx[k];
      T& cell = v.x_tile[v.x_ptr[i / nt] * nt + i % nt];
      if (cell != T{}) --stored;  // duplicate overwrite: retract old count
      cell = x.vals[k];
      if (cell != T{}) ++stored;
    }
    v.nnz = stored;
    TILESPMSPV_POSTCONDITION(validate_tile_vector(v),
                             "TileVector::from_sparse");
    return v;
  }

  /// Converts back to the plain sparse form (exact zeros inside non-empty
  /// tiles are dropped, matching SparseVec's invariant).
  SparseVec<T> to_sparse() const {
    SparseVec<T> x(n);
    for (index_t t = 0; t < num_tiles(); ++t) {
      const index_t slot = x_ptr[t];
      if (slot == kEmptyTile) continue;
      const index_t base = t * nt;
      for (index_t j = 0; j < nt && base + j < n; ++j) {
        const T v = x_tile[slot * nt + j];
        if (v != T{}) x.push(base + j, v);
      }
    }
    return x;
  }
};

}  // namespace tilespmspv
