// Tile-structure analysis: per-matrix statistics over the nt×nt grid
// (occupancy, nnz-per-tile distribution, row-tile lengths). These are the
// quantities the paper's narrative reasons with — "less non-empty tiles
// occupation and dense distribution of nonzeros in the tiles" — exposed
// as a reusable module for the harnesses, the CLI's `stats` command and
// format-selection heuristics.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct TileStats {
  index_t nt = 0;
  index_t tile_rows = 0;
  index_t tile_cols = 0;
  index_t nonempty_tiles = 0;
  offset_t nnz = 0;

  double occupancy = 0.0;       // non-empty / grid positions
  double avg_nnz_per_tile = 0.0;
  index_t max_nnz_per_tile = 0;
  double avg_tile_fill = 0.0;   // avg nnz / (nt*nt) over non-empty tiles
  index_t max_row_tiles = 0;    // longest tile row (load-balance proxy)
  double avg_row_tiles = 0.0;

  /// Histogram of nnz-per-tile in powers of two: bucket b counts tiles
  /// with nnz in [2^b, 2^(b+1)).
  std::vector<offset_t> nnz_histogram;

  /// Exact count of tiles the default extraction rule (threshold 2) would
  /// move to the COO side matrix.
  offset_t tiles_le2 = 0;
};

/// Computes the statistics in one pass over the CSR structure (no tiled
/// matrix is materialized).
template <typename T>
TileStats tile_stats(const Csr<T>& a, index_t nt) {
  TileStats s;
  s.nt = nt;
  s.tile_rows = ceil_div(a.rows, nt);
  s.tile_cols = ceil_div(a.cols, nt);
  s.nnz = a.nnz();

  std::vector<offset_t> tile_nnz(s.tile_cols, 0);
  std::vector<index_t> touched;
  for (index_t tr = 0; tr < s.tile_rows; ++tr) {
    touched.clear();
    const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
    for (index_t r = tr * nt; r < r_end; ++r) {
      for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
        const index_t tc = a.col_idx[i] / nt;
        if (tile_nnz[tc] == 0) touched.push_back(tc);
        ++tile_nnz[tc];
      }
    }
    s.nonempty_tiles += static_cast<index_t>(touched.size());
    s.max_row_tiles =
        std::max(s.max_row_tiles, static_cast<index_t>(touched.size()));
    for (index_t tc : touched) {
      const offset_t c = tile_nnz[tc];
      s.max_nnz_per_tile = std::max<index_t>(s.max_nnz_per_tile,
                                             static_cast<index_t>(c));
      if (c <= 2) ++s.tiles_le2;
      const auto bucket = static_cast<std::size_t>(
          63 - std::countl_zero(static_cast<std::uint64_t>(c)));
      if (s.nnz_histogram.size() <= bucket) {
        s.nnz_histogram.resize(bucket + 1, 0);
      }
      ++s.nnz_histogram[bucket];
      tile_nnz[tc] = 0;
    }
  }
  const double grid = static_cast<double>(s.tile_rows) * s.tile_cols;
  s.occupancy = grid == 0.0 ? 0.0 : s.nonempty_tiles / grid;
  s.avg_nnz_per_tile =
      s.nonempty_tiles == 0
          ? 0.0
          : static_cast<double>(s.nnz) / static_cast<double>(s.nonempty_tiles);
  s.avg_tile_fill = s.avg_nnz_per_tile / (static_cast<double>(nt) * nt);
  s.avg_row_tiles = s.tile_rows == 0
                        ? 0.0
                        : static_cast<double>(s.nonempty_tiles) / s.tile_rows;
  return s;
}

}  // namespace tilespmspv
