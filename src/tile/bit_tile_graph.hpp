// Bitmask tiled adjacency structure for TileBFS (paper §3.2.3, Fig. 5).
//
// The n×n adjacency matrix A (A[i][j] = 1 iff edge j -> i, so that y = A x
// expands a frontier x) is cut into NT×NT tiles and every non-empty tile is
// stored twice:
//   - CSR form "A2": per tile, one word per local *row* holding that row's
//     column pattern (used by Push-CSR and the pull kernel);
//   - CSC form "A1": per tile, one word per local *column* holding that
//     column's row pattern (used by Push-CSC).
// For undirected graphs the two forms hold identical information, which is
// the storage-halving observation the paper makes; both are materialized
// here so directed graphs also work.
//
// Tiles with at most `extract_threshold` edges are extracted into a plain
// edge list traversed by a separate edge-parallel pass (the paper hands
// this part to GSwitch; see bfs/tile_bfs.hpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "formats/csr.hpp"
#include "formats/validate.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_chunks.hpp"
#include "util/bitops.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <int NT>
struct BitTileGraph {
  using Word = bitword_t<NT>;

  // Paper §3.2.3 layout guards: every tile is NT mask words of NT bits
  // each, so the word width must equal the tile size exactly and the
  // per-tile mask block (csr_masks[t*NT .. t*NT+NT)) must be NT words.
  static_assert(NT == 8 || NT == 16 || NT == 32 || NT == 64,
                "tile size must match a machine word width");
  static_assert(sizeof(Word) * 8 == NT,
                "bitmask tile rows must be exactly one NT-bit word");

  index_t n = 0;       // number of vertices (matrix order)
  index_t tile_n = 0;  // ceil(n / NT)
  offset_t edges = 0;  // total nnz including extracted part

  // CSR over the tile grid ("A2"): tile (tr, tc) stores, for each local row
  // lr, the word csr_masks[t*NT + lr] whose bit lc is set iff
  // A[tr*NT+lr][tc*NT+lc] != 0.
  // Heavy arrays are ArrayBuf (parallel/arena.hpp): owned by default,
  // views when the graph is arena-placed or mmapped from a tile file.
  ArrayBuf<offset_t> csr_tile_ptr;  // length tile_n + 1
  ArrayBuf<index_t> csr_tile_col;
  ArrayBuf<Word> csr_masks;

  // Per-tile occupancy summary: bit lr of csr_row_summary[t] is set iff
  // local row lr of tile t holds any nonzero. The kernels AND the frontier
  // or unvisited word against this before touching the NT-word payload, so
  // near-empty tiles (scattered matrices) cost O(popcount) instead of
  // O(NT) per visit.
  ArrayBuf<Word> csr_row_summary;

  // CSC over the tile grid ("A1"): tile (tr, tc) stores, for each local
  // column lc, the word csc_masks[t*NT + lc] whose bit lr is set iff the
  // same entry is nonzero.
  //
  // Symmetric sharing (paper §3.2.3): for an undirected graph, the column
  // masks of tile (tr, tc) equal the row masks of its mirror tile
  // (tc, tr), so materializing csc_masks would duplicate every word. When
  // the pattern is symmetric, csc_masks stays empty and csc_mirror[t]
  // holds the CSR-order index of the mirror tile instead — halving the
  // mask storage exactly as the paper describes. csc_mask(t) hides the
  // difference from the kernels.
  ArrayBuf<offset_t> csc_tile_ptr;  // length tile_n + 1
  ArrayBuf<index_t> csc_tile_row;
  ArrayBuf<Word> csc_masks;       // empty when masks are shared
  ArrayBuf<offset_t> csc_mirror;  // empty unless masks are shared
  bool shared_masks = false;

  // Column-occupancy summary of the CSC form (same role as above).
  ArrayBuf<Word> csc_col_summary;

  /// Column-mask block of CSC-order tile t (NT words).
  const Word* csc_mask(offset_t t) const {
    return shared_masks
               ? &csr_masks[static_cast<std::size_t>(csc_mirror[t]) * NT]
               : &csc_masks[static_cast<std::size_t>(t) * NT];
  }

  /// Bytes spent on tile masks (shows the symmetric-sharing saving).
  std::size_t mask_bytes() const {
    return (csr_masks.size() + csc_masks.size()) * sizeof(Word) +
           csc_mirror.size() * sizeof(offset_t);
  }

  // Extracted very-sparse part, indexed by source vertex so the BFS side
  // pass can expand only the frontier's edges: side_dst[side_ptr[u] ..
  // side_ptr[u+1]) are the out-neighbors of u among extracted edges
  // (A[dst][u] entries).
  ArrayBuf<offset_t> side_ptr;  // length n + 1
  ArrayBuf<index_t> side_dst;

  offset_t side_edge_count() const {
    return static_cast<offset_t>(side_dst.size());
  }

  // Work-weighted dispatch boundaries over tile rows for the matrix-driven
  // BFS kernels (Push-CSR / Pull-CSC), built once at conversion time like
  // TileMatrix::row_chunk_ptr: chunk c covers tile rows
  // [csr_chunk_ptr[c], csr_chunk_ptr[c+1]). The weight of a tile row is
  // one claim-loop iteration plus, per stored tile, the metadata charge
  // and the popcount of its row summary (set rows are what the kernels
  // actually scan). Empty on hand-built graphs; the kernels fall back to
  // uniform chunks then.
  std::vector<index_t> csr_chunk_ptr;

  // Per-tile-column work weight of the CSC form (same unit), used by the
  // per-level frontier-slot chunking of Push-CSC and kept as a length
  // tile_n array because the frontier is a sparse subset of columns — a
  // prefix sum over all columns would not compose over the slot list.
  ArrayBuf<offset_t> csc_col_weight;

  // View-backed storage owner + placement tag (see TileMatrix::storage).
  Placement placed = Placement::kHeap;
  std::shared_ptr<const void> storage;

  index_t num_tiles() const {
    return static_cast<index_t>(csr_tile_col.size());
  }

  double tile_occupancy() const {
    const double grid = static_cast<double>(tile_n) * tile_n;
    return grid == 0.0 ? 0.0 : num_tiles() / grid;
  }

  /// Builds both tile forms from a square CSR pattern (values ignored).
  /// When `share_symmetric` is set and the pattern is symmetric, the CSC
  /// masks alias the CSR ones (§3.2.3 storage halving). The build runs in
  /// parallel over nnz-weighted tile-row ranges on `pool` (nullptr =
  /// shared pool); range merges happen in range order, so the resulting
  /// structure is bit-identical to the serial build regardless of pool
  /// size or scheduling.
  static BitTileGraph from_csr(const Csr<value_t>& a,
                               index_t extract_threshold = 0,
                               bool share_symmetric = true,
                               ThreadPool* pool = nullptr) {
    assert(a.rows == a.cols);
    BitTileGraph g;
    g.n = a.rows;
    g.tile_n = ceil_div<index_t>(a.rows, NT);
    g.edges = a.nnz();
    g.csr_tile_ptr.assign(g.tile_n + 1, 0);

    // Parallel grain: tile-row ranges of roughly equal nnz. Each range
    // owns a disjoint slice of rows (and hence of the tiles and masks
    // those rows produce), so the two passes below need no atomics.
    const std::vector<index_t> ranges = build_weighted_chunks(
        g.tile_n, std::max<offset_t>(a.nnz() / 32 + 1, offset_t{4096}),
        [&](index_t tr) {
          const index_t r_begin = tr * NT;
          const index_t r_end = std::min<index_t>(r_begin + NT, a.rows);
          return offset_t{1} + a.row_ptr[r_end] - a.row_ptr[r_begin];
        });
    const index_t nranges = static_cast<index_t>(ranges.size()) - 1;

    // Pass 1 (parallel): per tile row, count nnz per tile column; decide
    // kept vs extracted (same structure as TileMatrix::from_csr). Kept
    // column ids land in per-range buffers whose range-order concatenation
    // equals the row-order list.
    std::vector<std::vector<index_t>> range_kept(
        static_cast<std::size_t>(nranges));
    parallel_for(
        nranges,
        [&](index_t rg) {
          std::vector<offset_t> tile_nnz(g.tile_n, 0);
          std::vector<index_t> touched;
          std::vector<index_t>& kept = range_kept[rg];
          for (index_t tr = ranges[rg]; tr < ranges[rg + 1]; ++tr) {
            touched.clear();
            const index_t r_begin = tr * NT;
            const index_t r_end = std::min<index_t>(r_begin + NT, a.rows);
            for (index_t r = r_begin; r < r_end; ++r) {
              for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
                const index_t tc = a.col_idx[i] / NT;
                if (tile_nnz[tc] == 0) touched.push_back(tc);
                ++tile_nnz[tc];
              }
            }
            std::sort(touched.begin(), touched.end());
            for (index_t tc : touched) {
              if (tile_nnz[tc] > extract_threshold) {
                kept.push_back(tc);
                ++g.csr_tile_ptr[tr + 1];
              }
              tile_nnz[tc] = 0;
            }
          }
        },
        pool, /*chunk=*/1);
    for (index_t tr = 0; tr < g.tile_n; ++tr) {
      g.csr_tile_ptr[tr + 1] += g.csr_tile_ptr[tr];
    }
    g.csr_tile_col.clear();
    for (const auto& kept : range_kept) {
      g.csr_tile_col.append(kept.begin(), kept.end());
    }
    const index_t ntiles = static_cast<index_t>(g.csr_tile_col.size());
    g.csr_masks.assign(static_cast<std::size_t>(ntiles) * NT, Word{0});

    // Pass 2 (parallel): fill the CSR row masks; route extracted entries
    // to per-range (src=col, dst=row) edge lists, bucketed by source
    // below. Every mask word written belongs to a tile of the range's own
    // rows.
    std::vector<std::vector<std::pair<index_t, index_t>>> range_extracted(
        static_cast<std::size_t>(nranges));
    parallel_for(
        nranges,
        [&](index_t rg) {
          std::vector<index_t> slot_of(g.tile_n, kEmptyTile);
          auto& extracted = range_extracted[rg];
          for (index_t tr = ranges[rg]; tr < ranges[rg + 1]; ++tr) {
            const offset_t t_begin = g.csr_tile_ptr[tr];
            const offset_t t_end = g.csr_tile_ptr[tr + 1];
            for (offset_t t = t_begin; t < t_end; ++t) {
              slot_of[g.csr_tile_col[t]] = static_cast<index_t>(t);
            }
            const index_t r_begin = tr * NT;
            const index_t r_end = std::min<index_t>(r_begin + NT, a.rows);
            for (index_t r = r_begin; r < r_end; ++r) {
              const index_t lr = r - r_begin;
              for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
                const index_t c = a.col_idx[i];
                const index_t t = slot_of[c / NT];
                if (t == kEmptyTile) {
                  extracted.emplace_back(c, r);
                  continue;
                }
                g.csr_masks[static_cast<std::size_t>(t) * NT + lr] |=
                    msb_bit<Word>(c % NT);
              }
            }
            for (offset_t t = t_begin; t < t_end; ++t) {
              slot_of[g.csr_tile_col[t]] = kEmptyTile;
            }
          }
        },
        pool, /*chunk=*/1);

    // Bucket the extracted edges by source (counting sort, range order ==
    // the serial row-major insertion order).
    g.side_ptr.assign(g.n + 1, 0);
    std::size_t total_extracted = 0;
    for (const auto& extracted : range_extracted) {
      total_extracted += extracted.size();
      for (const auto& [src, dst] : extracted) {
        ++g.side_ptr[src + 1];
      }
    }
    g.side_dst.resize(total_extracted);
    for (index_t v = 0; v < g.n; ++v) {
      g.side_ptr[v + 1] += g.side_ptr[v];
    }
    {
      std::vector<offset_t> cursor(g.side_ptr.begin(), g.side_ptr.end() - 1);
      for (const auto& extracted : range_extracted) {
        for (const auto& [src, dst] : extracted) {
          g.side_dst[cursor[src]++] = dst;
        }
      }
    }

    g.shared_masks = share_symmetric && is_pattern_symmetric(a);
    g.build_csc_from_csr(pool);
    g.build_summaries(pool);
    g.build_chunks(pool);
    TILESPMSPV_POSTCONDITION(validate_bit_tile_graph(g),
                             "BitTileGraph::from_csr");
    return g;
  }

  /// True iff the sparsity pattern equals its transpose.
  static bool is_pattern_symmetric(const Csr<value_t>& a) {
    if (a.rows != a.cols) return false;
    const Csr<value_t> t = a.transpose();
    return t.row_ptr == a.row_ptr && t.col_idx == a.col_idx;
  }

  /// Total bytes of the heavy arrays.
  std::size_t payload_bytes() const {
    auto vb = [](const auto& v) {
      return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
    };
    return vb(csr_tile_ptr) + vb(csr_tile_col) + vb(csr_masks) +
           vb(csr_row_summary) + vb(csc_tile_ptr) + vb(csc_tile_row) +
           vb(csc_masks) + vb(csc_mirror) + vb(csc_col_summary) +
           vb(side_ptr) + vb(side_dst) + vb(csr_chunk_ptr) +
           vb(csc_col_weight);
  }

  /// Moves the heavy arrays into `arena` (see TileMatrix::place).
  void place(std::shared_ptr<Arena> arena, ThreadPool* pool = nullptr) {
    assert(arena != nullptr);
    arena_place_buf(*arena, csr_tile_ptr, pool);
    arena_place_buf(*arena, csr_tile_col, pool);
    arena_place_buf(*arena, csr_masks, pool);
    arena_place_buf(*arena, csr_row_summary, pool);
    arena_place_buf(*arena, csc_tile_ptr, pool);
    arena_place_buf(*arena, csc_tile_row, pool);
    arena_place_buf(*arena, csc_masks, pool);
    arena_place_buf(*arena, csc_mirror, pool);
    arena_place_buf(*arena, csc_col_summary, pool);
    arena_place_buf(*arena, side_ptr, pool);
    arena_place_buf(*arena, side_dst, pool);
    arena_place_buf(*arena, csc_col_weight, pool);
    placed = arena->placement();
    storage = std::shared_ptr<const void>(arena, arena.get());
  }

 private:
  void build_summaries(ThreadPool* pool) {
    const index_t ntiles = num_tiles();
    csr_row_summary.assign(ntiles, Word{0});
    csc_col_summary.assign(ntiles, Word{0});
    parallel_for(
        ntiles,
        [&](index_t t) {
          for (index_t l = 0; l < NT; ++l) {
            if (csr_masks[static_cast<std::size_t>(t) * NT + l] != 0) {
              csr_row_summary[t] |= msb_bit<Word>(l);
            }
          }
        },
        pool, /*chunk=*/64);
    // Second loop after the barrier: the shared-mask branch reads the
    // fully-built CSR summaries through the mirror references.
    parallel_for(
        ntiles,
        [&](index_t t) {
          if (shared_masks) {
            csc_col_summary[t] = csr_row_summary[csc_mirror[t]];
          } else {
            for (index_t l = 0; l < NT; ++l) {
              if (csc_masks[static_cast<std::size_t>(t) * NT + l] != 0) {
                csc_col_summary[t] |= msb_bit<Word>(l);
              }
            }
          }
        },
        pool, /*chunk=*/64);
  }

  /// Derives the CSC tile form from the CSR one (tile-grid transpose plus
  /// per-tile mask transpose, or mirror references when masks are shared).
  /// The cheap position pass stays serial (cursor sweep over tile
  /// metadata); the per-tile payload — NT×NT mask transpose or mirror
  /// lookup — runs in parallel over tile columns, each of which owns a
  /// disjoint slice of the CSC arrays.
  void build_csc_from_csr(ThreadPool* pool) {
    const index_t ntiles = num_tiles();
    csc_tile_ptr.assign(tile_n + 1, 0);
    for (index_t tc : csr_tile_col) {
      ++csc_tile_ptr[tc + 1];
    }
    for (index_t c = 0; c < tile_n; ++c) {
      csc_tile_ptr[c + 1] += csc_tile_ptr[c];
    }
    csc_tile_row.resize(ntiles);
    if (shared_masks) {
      csc_mirror.resize(ntiles);
    } else {
      csc_masks.assign(static_cast<std::size_t>(ntiles) * NT, Word{0});
    }
    // CSR-order source tile of each CSC-order slot, recorded by the serial
    // position pass and consumed by the parallel payload pass.
    std::vector<offset_t> csc_src(static_cast<std::size_t>(ntiles));
    std::vector<offset_t> cursor(csc_tile_ptr.begin(), csc_tile_ptr.end() - 1);
    for (index_t tr = 0; tr < tile_n; ++tr) {
      for (offset_t t = csr_tile_ptr[tr]; t < csr_tile_ptr[tr + 1]; ++t) {
        const index_t tc = csr_tile_col[t];
        const offset_t u = cursor[tc]++;
        csc_tile_row[u] = tr;
        csc_src[u] = t;
      }
    }
    parallel_for(
        tile_n,
        [&](index_t tc) {
          for (offset_t u = csc_tile_ptr[tc]; u < csc_tile_ptr[tc + 1]; ++u) {
            const index_t tr = csc_tile_row[u];
            if (shared_masks) {
              // Column masks of (tr, tc) == row masks of the mirror
              // (tc, tr); find it in tile row tc (the kept-tile pattern is
              // symmetric because extraction decisions depend only on
              // per-tile nnz).
              csc_mirror[u] = find_csr_tile(tc, tr);
            } else {
              // Transpose the NT×NT bit tile: row mask bit lc becomes
              // column mask bit lr.
              const Word* row_masks =
                  &csr_masks[static_cast<std::size_t>(csc_src[u]) * NT];
              Word* col_masks = &csc_masks[static_cast<std::size_t>(u) * NT];
              for (index_t lr = 0; lr < NT; ++lr) {
                for_each_set_bit(row_masks[lr], [&](int lc) {
                  col_masks[lc] |= msb_bit<Word>(lr);
                });
              }
            }
          }
        },
        pool, /*chunk=*/4);
  }

  /// Builds the kernel scheduling metadata: weighted tile-row chunk
  /// boundaries for the matrix-driven kernels and per-column weights for
  /// the frontier-driven one. Weights count summary popcounts — the unit
  /// of work the BFS kernels actually perform per tile.
  void build_chunks(ThreadPool* pool) {
    csr_chunk_ptr = build_weighted_chunks(
        tile_n, kChunkTargetWork, [&](index_t tr) {
          offset_t w = 1;
          for (offset_t t = csr_tile_ptr[tr]; t < csr_tile_ptr[tr + 1]; ++t) {
            w += kTileMetaWork + popcount(csr_row_summary[t]);
          }
          return w;
        });
    csc_col_weight.assign(static_cast<std::size_t>(tile_n), 0);
    parallel_for(
        tile_n,
        [&](index_t tc) {
          offset_t w = 1;
          for (offset_t t = csc_tile_ptr[tc]; t < csc_tile_ptr[tc + 1]; ++t) {
            w += kTileMetaWork + popcount(csc_col_summary[t]);
          }
          csc_col_weight[tc] = w;
        },
        pool, /*chunk=*/64);
  }

  /// CSR-order index of grid tile (tr, tc); the tile must exist.
  offset_t find_csr_tile(index_t tr, index_t tc) const {
    const auto* begin = csr_tile_col.data() + csr_tile_ptr[tr];
    const auto* end = csr_tile_col.data() + csr_tile_ptr[tr + 1];
    const auto* it = std::lower_bound(begin, end, tc);
    assert(it != end && *it == tc);
    return csr_tile_ptr[tr] + (it - begin);
  }
};

}  // namespace tilespmspv
