// Numeric tiled sparse matrix (paper §3.2.1).
//
// The matrix is partitioned into nt×nt tiles; non-empty tiles are the
// "nonzeros" of a CSR over the tile grid (tile_row_ptr / tile_col_id).
// Inside a tile only the actual nonzeros are kept, in a tile-local CSR:
// a (nt+1)-entry row pointer, 8-bit local column indices and the values.
// Tiles with at most `extract_threshold` nonzeros are *extracted* into a
// side COO matrix so their tile metadata is never paid for (§3.2.1).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "formats/validate.hpp"
#include "obs/trace.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_chunks.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct TileMatrix {
  /// Largest supported tile size: local column indices are stored as one
  /// byte (`local_col`), so a tile edge may not exceed 256.
  static constexpr index_t kMaxNt = 256;
  static_assert(kMaxNt - 1 <= std::numeric_limits<std::uint8_t>::max(),
                "local column indices must fit the 8-bit intra-tile format");

  index_t rows = 0;
  index_t cols = 0;
  index_t nt = 16;
  index_t tile_rows = 0;  // ceil(rows/nt)
  index_t tile_cols = 0;  // ceil(cols/nt)

  // Every heavy array is an ArrayBuf (parallel/arena.hpp): owned heap
  // vectors by default, rebindable as views into an arena or an mmapped
  // tile file with the kernels none the wiser (they read through the same
  // data()/operator[] surface).

  // CSR over the tile grid.
  ArrayBuf<offset_t> tile_row_ptr;  // length tile_rows + 1
  ArrayBuf<index_t> tile_col_id;    // per non-empty tile

  // Per-tile intra storage, concatenated. Tile t's local row pointer lives
  // at intra_row_ptr[t*(nt+1) .. t*(nt+1)+nt]; its entries start at
  // tile_nnz_ptr[t].
  ArrayBuf<offset_t> tile_nnz_ptr;        // length ntiles + 1
  ArrayBuf<std::uint16_t> intra_row_ptr;  // ntiles * (nt+1)
  ArrayBuf<std::uint8_t> local_col;       // per entry, < nt (nt <= 256)
  ArrayBuf<T> vals;

  // Nonzeros extracted from very sparse tiles (empty when extraction off).
  Coo<T> extracted;

  // The same extracted nonzeros indexed by column, so multiply kernels can
  // visit only the columns selected by the sparse input vector instead of
  // sweeping the whole side matrix (work-proportionality; see DESIGN.md).
  ArrayBuf<offset_t> side_col_ptr;  // length cols + 1
  ArrayBuf<index_t> side_row_idx;
  ArrayBuf<T> side_vals;

  // Row pointer into `extracted` (which from_csr builds row-major sorted),
  // for kernels that consume this matrix as a transposed view.
  ArrayBuf<offset_t> side_row_ptr;  // length rows + 1

  // Work-balanced tile-row chunk boundaries (see tile/tile_chunks.hpp):
  // scheduling chunk c covers tile rows [row_chunk_ptr[c], row_chunk_ptr[c+1]).
  // Built once at conversion so every multiply reuses the same balance.
  // Stays a plain vector: the kernels' chunk-pointer fallback logic takes
  // its address, and it is small enough that placement never matters.
  std::vector<index_t> row_chunk_ptr;

  // Compact non-empty-row runs per tile, derived from the intra-tile CSR:
  // tile t's runs are the byte triples (local_row, count - 1, contiguous)
  // at row_runs[3*run_ptr[t] .. 3*run_ptr[t+1]), in local-row order. The
  // CSR kernels iterate runs instead of all nt local rows, so sparse tiles
  // never scan their empty rows (the dominant overhead on road-network
  // matrices where tiles hold a handful of nonzeros). The third byte marks
  // rows whose local columns are consecutive (the banded/FEM regime),
  // letting the micro-kernel use contiguous loads instead of gathers.
  ArrayBuf<offset_t> run_ptr;       // length ntiles + 1
  ArrayBuf<std::uint8_t> row_runs;  // 3 bytes per run

  // Per-tile micro-kernel choice, decided once from the run shape (see
  // build_row_runs): tiles keep the strategy that their run-length and
  // contiguity statistics favor, so the multiply's inner loop carries no
  // per-tile heuristics.
  static constexpr std::uint8_t kRunFlat = 0;      // flat gather + segment sums
  static constexpr std::uint8_t kRunDispatch = 1;  // per-run contig/gather dots
  static constexpr std::uint8_t kRunTiny = 2;  // plain scalar
  ArrayBuf<std::uint8_t> tile_strategy;        // length ntiles

  // Where the heavy arrays live, and the owner keeping view-backed storage
  // alive (an Arena for first-touch placement, a MappedFile for zero-copy
  // loads). Unused (null) for plain heap matrices. Copies share the owner.
  Placement placed = Placement::kHeap;
  std::shared_ptr<const void> storage;

  index_t num_tiles() const {
    return static_cast<index_t>(tile_col_id.size());
  }
  offset_t tiled_nnz() const { return static_cast<offset_t>(vals.size()); }
  offset_t total_nnz() const { return tiled_nnz() + extracted.nnz(); }

  /// Fraction of grid positions occupied by stored (non-extracted) tiles.
  double tile_occupancy() const {
    const double grid = static_cast<double>(tile_rows) * tile_cols;
    return grid == 0.0 ? 0.0 : num_tiles() / grid;
  }

  /// Partitions `a` into nt×nt tiles. Tiles with nnz <= extract_threshold
  /// are moved to the side COO matrix (0 disables extraction).
  static TileMatrix from_csr(const Csr<T>& a, index_t nt,
                             index_t extract_threshold = 0) {
    assert(nt > 0 && nt <= 256);
    obs::TraceSpan span("convert/tile_matrix", "convert");
    TileMatrix m;
    m.rows = a.rows;
    m.cols = a.cols;
    m.nt = nt;
    m.tile_rows = ceil_div(a.rows, nt);
    m.tile_cols = ceil_div(a.cols, nt);
    m.tile_row_ptr.assign(m.tile_rows + 1, 0);
    m.extracted = Coo<T>(a.rows, a.cols);

    // Dense per-tile-row scratch, reused across tile rows.
    std::vector<offset_t> tile_nnz(m.tile_cols, 0);
    std::vector<index_t> touched;       // tile cols seen in this tile row
    std::vector<index_t> slot_of(m.tile_cols, kEmptyTile);

    // Pass 1 per tile row: count nnz per tile, decide which tiles are kept
    // vs extracted, and lay out the global arrays.
    std::vector<index_t> kept_cols;        // tile col ids of kept tiles
    std::vector<offset_t> kept_tile_nnz;   // nnz of each kept tile
    for (index_t tr = 0; tr < m.tile_rows; ++tr) {
      touched.clear();
      const index_t r_begin = tr * nt;
      const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
      for (index_t r = r_begin; r < r_end; ++r) {
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          const index_t tc = a.col_idx[i] / nt;
          if (tile_nnz[tc] == 0) touched.push_back(tc);
          ++tile_nnz[tc];
        }
      }
      std::sort(touched.begin(), touched.end());
      for (index_t tc : touched) {
        if (tile_nnz[tc] > extract_threshold) {
          kept_cols.push_back(tc);
          kept_tile_nnz.push_back(tile_nnz[tc]);
          ++m.tile_row_ptr[tr + 1];
        }
        tile_nnz[tc] = 0;  // reset scratch
      }
    }
    for (index_t tr = 0; tr < m.tile_rows; ++tr) {
      m.tile_row_ptr[tr + 1] += m.tile_row_ptr[tr];
    }
    const index_t ntiles = static_cast<index_t>(kept_cols.size());
    m.tile_col_id = std::move(kept_cols);
    m.tile_nnz_ptr.assign(ntiles + 1, 0);
    for (index_t t = 0; t < ntiles; ++t) {
      m.tile_nnz_ptr[t + 1] = m.tile_nnz_ptr[t] + kept_tile_nnz[t];
    }
    m.intra_row_ptr.assign(static_cast<std::size_t>(ntiles) * (nt + 1), 0);
    m.local_col.resize(m.tile_nnz_ptr[ntiles]);
    m.vals.resize(m.tile_nnz_ptr[ntiles]);

    // Pass 2: fill per-tile CSR. Rows are visited in order inside each tile
    // row, so entries arrive tile-row-major and the intra row pointer can
    // be built with running cursors.
    std::vector<offset_t> cursor;  // per kept tile in this tile row
    for (index_t tr = 0; tr < m.tile_rows; ++tr) {
      const offset_t t_begin = m.tile_row_ptr[tr];
      const offset_t t_end = m.tile_row_ptr[tr + 1];
      for (offset_t t = t_begin; t < t_end; ++t) {
        slot_of[m.tile_col_id[t]] = static_cast<index_t>(t);
      }
      cursor.assign(static_cast<std::size_t>(t_end - t_begin), 0);
      const index_t r_begin = tr * nt;
      const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
      for (index_t r = r_begin; r < r_end; ++r) {
        const index_t lr = r - r_begin;
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          const index_t c = a.col_idx[i];
          const index_t t = slot_of[c / nt];
          if (t == kEmptyTile) {
            m.extracted.push(r, c, a.vals[i]);
            continue;
          }
          const offset_t pos = m.tile_nnz_ptr[t] + cursor[t - t_begin]++;
          m.local_col[pos] = static_cast<std::uint8_t>(c % nt);
          m.vals[pos] = a.vals[i];
          // intra_row_ptr counts per local row first; prefix-summed below.
          ++m.intra_row_ptr[t * (nt + 1) + lr + 1];
        }
      }
      for (offset_t t = t_begin; t < t_end; ++t) {
        slot_of[m.tile_col_id[t]] = kEmptyTile;
        std::uint16_t* p = &m.intra_row_ptr[t * (nt + 1)];
        for (index_t lr = 0; lr < nt; ++lr) {
          p[lr + 1] = static_cast<std::uint16_t>(p[lr + 1] + p[lr]);
        }
      }
    }
    m.build_side_index();
    m.build_row_chunks();
    m.build_row_runs();
    TILESPMSPV_POSTCONDITION(validate_tile_matrix(m), "TileMatrix::from_csr");
    return m;
  }

  /// (Re)builds the per-tile non-empty-row run lists from intra_row_ptr
  /// and local_col. from_csr and the deserializer call this; re-call after
  /// mutating the intra-tile structure manually in tests.
  void build_row_runs() {
    const index_t ntiles = num_tiles();
    run_ptr.assign(ntiles + 1, 0);
    row_runs.clear();
    row_runs.reserve(vals.size());  // <= 3 bytes per stored entry
    tile_strategy.assign(ntiles, kRunFlat);
    for (index_t t = 0; t < ntiles; ++t) {
      const std::uint16_t* p =
          &intra_row_ptr[static_cast<std::size_t>(t) * (nt + 1)];
      const offset_t base = tile_nnz_ptr[t];
      const int tile_nnz = p[nt];
      int nruns = 0;
      int contig_covered = 0;  // entries in contiguous runs of length >= 2
      for (index_t lr = 0; lr < nt; ++lr) {
        const int c = p[lr + 1] - p[lr];
        if (c <= 0) continue;
        const std::uint8_t* rc = &local_col[base + p[lr]];
        std::uint8_t contig = 1;
        for (int i = 1; i < c; ++i) {
          if (rc[i] != static_cast<std::uint8_t>(rc[0] + i)) {
            contig = 0;
            break;
          }
        }
        if (contig && c >= 2) contig_covered += c;
        row_runs.push_back(static_cast<std::uint8_t>(lr));
        row_runs.push_back(static_cast<std::uint8_t>(c - 1));
        row_runs.push_back(contig);
        ++nruns;
      }
      run_ptr[t + 1] = static_cast<offset_t>(row_runs.size() / 3);
      // Tiny tiles: scalar beats any SIMD entry overhead. Band/FEM tiles
      // (mostly contiguous columns) and dense tiles (long rows) win with
      // per-run dots; everything else keeps the flat gather + segment sums
      // whose 4-wide product loop amortizes over short scattered runs.
      if (tile_nnz <= 8) {
        tile_strategy[t] = kRunTiny;
      } else if (2 * contig_covered >= tile_nnz ||
                 (nruns > 0 && tile_nnz >= 8 * nruns)) {
        tile_strategy[t] = kRunDispatch;
      }
    }
  }

  /// (Re)builds the work-balanced scheduling chunks from the current tile
  /// layout. from_csr and the deserializer call this; re-call after
  /// mutating the tile structure manually in tests.
  void build_row_chunks() {
    row_chunk_ptr =
        tilespmspv::build_row_chunks(tile_rows, tile_row_ptr, tile_nnz_ptr);
  }

  /// Builds the column index over the extracted part (called by from_csr;
  /// re-call after mutating `extracted` manually in tests).
  void build_side_index() {
    side_col_ptr.assign(cols + 1, 0);
    side_row_idx.resize(extracted.nnz());
    side_vals.resize(extracted.nnz());
    for (index_t c : extracted.col_idx) {
      ++side_col_ptr[c + 1];
    }
    for (index_t c = 0; c < cols; ++c) {
      side_col_ptr[c + 1] += side_col_ptr[c];
    }
    std::vector<offset_t> cursor(side_col_ptr.begin(), side_col_ptr.end() - 1);
    for (index_t i = 0; i < extracted.nnz(); ++i) {
      const offset_t pos = cursor[extracted.col_idx[i]]++;
      side_row_idx[pos] = extracted.row_idx[i];
      side_vals[pos] = extracted.vals[i];
    }
    side_row_ptr.assign(rows + 1, 0);
    for (index_t r : extracted.row_idx) {
      ++side_row_ptr[r + 1];
    }
    for (index_t r = 0; r < rows; ++r) {
      side_row_ptr[r + 1] += side_row_ptr[r];
    }
  }

  /// Updates the value of an existing nonzero in place (dynamic-graph /
  /// iterative-solver support: edge reweighting without retiling).
  /// Returns false if (r, c) is not a stored nonzero — the tiled layout
  /// cannot grow a pattern in place; pattern changes require a rebuild.
  bool update_value(index_t r, index_t c, T v) {
    assert(r >= 0 && r < rows && c >= 0 && c < cols);
    // Locate the tile via binary search in the tile row.
    const index_t tr = r / nt;
    const index_t tc = c / nt;
    const index_t* begin = tile_col_id.data() + tile_row_ptr[tr];
    const index_t* end = tile_col_id.data() + tile_row_ptr[tr + 1];
    const index_t* it = std::lower_bound(begin, end, tc);
    if (it != end && *it == tc) {
      const offset_t t = tile_row_ptr[tr] + (it - begin);
      const std::uint16_t* p = &intra_row_ptr[t * (nt + 1)];
      const index_t lr = r % nt;
      const auto lc = static_cast<std::uint8_t>(c % nt);
      const offset_t base = tile_nnz_ptr[t];
      // Local columns are sorted within the row.
      const auto* cb = local_col.data() + base + p[lr];
      const auto* ce = local_col.data() + base + p[lr + 1];
      const auto* ci = std::lower_bound(cb, ce, lc);
      if (ci != ce && *ci == lc) {
        vals[base + p[lr] + (ci - cb)] = v;
        return true;
      }
      return false;
    }
    // Not in a kept tile: the entry may live in the extracted part.
    for (offset_t i = side_col_ptr[c]; i < side_col_ptr[c + 1]; ++i) {
      if (side_row_idx[i] == r) {
        side_vals[i] = v;
        // Keep the COO mirror consistent (row-major sorted: search the
        // row range via side_row_ptr).
        for (offset_t k = side_row_ptr[r]; k < side_row_ptr[r + 1]; ++k) {
          if (extracted.col_idx[k] == c) {
            extracted.vals[k] = v;
            break;
          }
        }
        return true;
      }
    }
    return false;
  }

  /// Reads the stored value at (r, c); returns T{} when not present
  /// (matching the mathematical matrix).
  T value_at(index_t r, index_t c) const {
    const index_t tr = r / nt;
    const index_t tc = c / nt;
    const index_t* begin = tile_col_id.data() + tile_row_ptr[tr];
    const index_t* end = tile_col_id.data() + tile_row_ptr[tr + 1];
    const index_t* it = std::lower_bound(begin, end, tc);
    if (it != end && *it == tc) {
      const offset_t t = tile_row_ptr[tr] + (it - begin);
      const std::uint16_t* p = &intra_row_ptr[t * (nt + 1)];
      const index_t lr = r % nt;
      const auto lc = static_cast<std::uint8_t>(c % nt);
      const offset_t base = tile_nnz_ptr[t];
      const auto* cb = local_col.data() + base + p[lr];
      const auto* ce = local_col.data() + base + p[lr + 1];
      const auto* ci = std::lower_bound(cb, ce, lc);
      if (ci != ce && *ci == lc) return vals[base + p[lr] + (ci - cb)];
    }
    for (offset_t i = side_col_ptr[c]; i < side_col_ptr[c + 1]; ++i) {
      if (side_row_idx[i] == r) return side_vals[i];
    }
    return T{};
  }

  /// Reassembles the full matrix (tiled part + extracted part) as sorted
  /// row-major COO — the round-trip used by the property tests.
  Coo<T> to_coo() const {
    Coo<T> out(rows, cols);
    out.reserve(static_cast<std::size_t>(total_nnz()));
    for (index_t tr = 0; tr < tile_rows; ++tr) {
      for (offset_t t = tile_row_ptr[tr]; t < tile_row_ptr[tr + 1]; ++t) {
        const index_t col_base = tile_col_id[t] * nt;
        const std::uint16_t* p = &intra_row_ptr[t * (nt + 1)];
        for (index_t lr = 0; lr < nt; ++lr) {
          for (offset_t i = tile_nnz_ptr[t] + p[lr];
               i < tile_nnz_ptr[t] + p[lr + 1]; ++i) {
            out.push(tr * nt + lr, col_base + local_col[i], vals[i]);
          }
        }
      }
    }
    for (index_t i = 0; i < extracted.nnz(); ++i) {
      out.push(extracted.row_idx[i], extracted.col_idx[i], extracted.vals[i]);
    }
    out.sort_row_major();
    return out;
  }

  /// Total bytes of the heavy arrays (payload + derived indexes).
  std::size_t payload_bytes() const {
    auto vb = [](const auto& v) {
      return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
    };
    return vb(tile_row_ptr) + vb(tile_col_id) + vb(tile_nnz_ptr) +
           vb(intra_row_ptr) + vb(local_col) + vb(vals) +
           vb(extracted.row_idx) + vb(extracted.col_idx) + vb(extracted.vals) +
           vb(side_col_ptr) + vb(side_row_idx) + vb(side_vals) +
           vb(side_row_ptr) + vb(row_chunk_ptr) + vb(run_ptr) + vb(row_runs) +
           vb(tile_strategy);
  }

  /// Moves every heavy array into `arena` and rebinds the fields as views.
  /// With a first-touch arena and a shard-configured pool, each array is
  /// copied by a uniform parallel sweep whose pinned workers fault their
  /// own slice's pages onto their NUMA node, so a shard's traversal reads
  /// mostly node-local memory. The arena joins the structure's `storage`
  /// holder (shared across copies).
  void place(std::shared_ptr<Arena> arena, ThreadPool* pool = nullptr) {
    assert(arena != nullptr);
    arena_place_buf(*arena, tile_row_ptr, pool);
    arena_place_buf(*arena, tile_col_id, pool);
    arena_place_buf(*arena, tile_nnz_ptr, pool);
    arena_place_buf(*arena, intra_row_ptr, pool);
    arena_place_buf(*arena, local_col, pool);
    arena_place_buf(*arena, vals, pool);
    arena_place_buf(*arena, side_col_ptr, pool);
    arena_place_buf(*arena, side_row_idx, pool);
    arena_place_buf(*arena, side_vals, pool);
    arena_place_buf(*arena, side_row_ptr, pool);
    arena_place_buf(*arena, run_ptr, pool);
    arena_place_buf(*arena, row_runs, pool);
    arena_place_buf(*arena, tile_strategy, pool);
    placed = arena->placement();
    storage = std::shared_ptr<const void>(arena, arena.get());
  }
};

}  // namespace tilespmspv
