// Work-weighted tile-row chunking (built once at conversion time).
//
// The SpMSpV phase-1 loops used to hand the pool fixed 8-tile-row chunks;
// on skewed matrices (power-law tile rows holding most of the payload next
// to long runs of empty rows) that either starves the claim counter with
// tiny chunks or serializes the heavy rows into one chunk. Instead the
// conversion pass cuts the tile-row range into chunks of roughly equal
// *work* — payload nonzeros plus a per-tile metadata charge — and the
// kernels dispatch one pool unit per weighted chunk. Scheduling only; the
// per-row traversal order and every observability counter are unchanged.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace tilespmspv {

/// Metadata charge per stored tile, in payload-nonzero units (a tile visit
/// costs an x_ptr lookup plus the intra pointer setup).
inline constexpr offset_t kTileMetaWork = 4;

/// Target work per chunk. Small enough that a 4-wide pool gets dozens of
/// claims even on the small suite matrices, large enough that the claim
/// fetch_add never shows up in profiles.
inline constexpr offset_t kChunkTargetWork = 4096;

/// Cuts [0, tile_rows) into work-balanced chunks. `tile_row_ptr` is the
/// CSR-over-tiles row pointer (length tile_rows + 1) and `tile_nnz_ptr`
/// the per-tile entry ranges; both the TileMatrix and PackedTileMatrix
/// layouts provide them (templated on the array type so owned vectors and
/// mapped ArrayBuf views both work). Returns boundaries: chunk c covers
/// tile rows [out[c], out[c+1]). Always at least one chunk when
/// tile_rows > 0.
template <typename PtrArray, typename NnzArray>
inline std::vector<index_t> build_row_chunks(index_t tile_rows,
                                             const PtrArray& tile_row_ptr,
                                             const NnzArray& tile_nnz_ptr) {
  std::vector<index_t> bounds;
  bounds.push_back(0);
  if (tile_rows <= 0) return bounds;
  offset_t acc = 0;
  for (index_t tr = 0; tr < tile_rows; ++tr) {
    const offset_t t_begin = tile_row_ptr[tr];
    const offset_t t_end = tile_row_ptr[tr + 1];
    // +1 per row: even empty tile rows cost a claim-loop iteration.
    acc += 1 + kTileMetaWork * (t_end - t_begin) +
           (tile_nnz_ptr[t_end] - tile_nnz_ptr[t_begin]);
    if (acc >= kChunkTargetWork) {
      bounds.push_back(tr + 1);
      acc = 0;
    }
  }
  if (bounds.back() != tile_rows) bounds.push_back(tile_rows);
  return bounds;
}

/// Generic weighted chunking into a caller-owned boundary vector: cuts
/// [0, n) so each chunk accumulates roughly `target` weight, with
/// weight(i) supplied per item. The into-variant exists for the BFS
/// frontier scheduling, which re-chunks the frontier slot list every
/// level and must not allocate in steady state (the workspace keeps the
/// vector). Boundaries follow the build_row_chunks convention: chunk c
/// covers items [out[c], out[c+1]), at least one chunk when n > 0.
template <typename WeightFn>
inline void build_weighted_chunks_into(std::vector<index_t>& bounds,
                                       index_t n, offset_t target,
                                       WeightFn&& weight) {
  bounds.clear();
  bounds.push_back(0);
  if (n <= 0) return;
  offset_t acc = 0;
  for (index_t i = 0; i < n; ++i) {
    acc += weight(i);
    if (acc >= target) {
      bounds.push_back(i + 1);
      acc = 0;
    }
  }
  if (bounds.back() != n) bounds.push_back(n);
}

/// Allocating convenience wrapper over build_weighted_chunks_into, used at
/// conversion time (BitTileGraph's per-tile-row popcount weights).
template <typename WeightFn>
inline std::vector<index_t> build_weighted_chunks(index_t n, offset_t target,
                                                  WeightFn&& weight) {
  std::vector<index_t> bounds;
  build_weighted_chunks_into(bounds, n, target, weight);
  return bounds;
}

/// Fallback boundaries (fixed-width chunks) for tiled matrices created
/// before chunking existed — e.g. hand-built in tests — so kernels can
/// assume boundaries are always present.
inline std::vector<index_t> uniform_row_chunks(index_t tile_rows,
                                               index_t width) {
  std::vector<index_t> bounds;
  bounds.push_back(0);
  for (index_t tr = width; tr < tile_rows; tr += width) bounds.push_back(tr);
  if (tile_rows > 0 && bounds.back() != tile_rows) bounds.push_back(tile_rows);
  return bounds;
}

}  // namespace tilespmspv
