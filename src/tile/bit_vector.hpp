// Tiled dense bitmask vector (paper §3.2.3).
//
// The BFS frontier x and visited mask m are stored as one machine word per
// length-NT tile, msb-first within the word (the paper's figures write the
// tile {1,0,0,0} as the value 8). The "sparse form" the paper maintains in
// parallel is the list of non-empty word slots, recomputed per iteration.
#pragma once

#include <cassert>
#include <vector>

#include "util/bitkernels.hpp"
#include "util/bitops.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <int NT>
struct BitVector {
  using Word = bitword_t<NT>;

  // One word per length-NT tile with no spare bits: index arithmetic
  // below (i / NT, msb_bit<Word>(i % NT)) is only correct when the word
  // width equals the tile size.
  static_assert(sizeof(Word) * 8 == NT,
                "bit-vector tiles must be exactly one NT-bit word");

  index_t n = 0;            // logical length
  std::vector<Word> words;  // ceil(n/NT) tiles

  BitVector() = default;
  explicit BitVector(index_t len)
      : n(len), words(ceil_div<index_t>(len, NT), Word{0}) {}

  index_t num_words() const { return static_cast<index_t>(words.size()); }

  void clear() { std::fill(words.begin(), words.end(), Word{0}); }

  void set(index_t i) {
    assert(i >= 0 && i < n);
    words[i / NT] |= msb_bit<Word>(i % NT);
  }

  bool test(index_t i) const {
    assert(i >= 0 && i < n);
    return test_msb_bit(words[i / NT], i % NT);
  }

  /// Number of set bits (frontier size / visited count).
  index_t count() const {
    return static_cast<index_t>(
        bitk::popcount_words(words.data(), num_words()));
  }

  bool any() const { return bitk::any_nonzero(words.data(), num_words()); }

  /// Fraction of set bits over the logical length — the vector sparsity the
  /// kernel selector compares against 0.01.
  double density() const {
    return n == 0 ? 0.0 : static_cast<double>(count()) / n;
  }

  /// Indices of all set bits in ascending order.
  std::vector<index_t> to_indices() const {
    std::vector<index_t> out;
    out.reserve(count());
    for (index_t s = 0; s < num_words(); ++s) {
      for_each_set_bit(words[s], [&](int b) { out.push_back(s * NT + b); });
    }
    return out;
  }

  /// Compact slot list of non-empty words — the sparse form driving the
  /// vector-driven kernels. The SIMD scan tests whole register-wide blocks
  /// against zero, so the common mostly-empty frontier costs one test per
  /// block instead of one branch per word.
  std::vector<index_t> nonempty_slots() const {
    std::vector<index_t> out(static_cast<std::size_t>(num_words()));
    const index_t k =
        bitk::collect_nonzero(words.data(), num_words(), 0, out.data());
    out.resize(static_cast<std::size_t>(k));
    return out;
  }

  /// Word masking off the padding bits of the final partial tile, so that
  /// complement-based kernels never touch positions >= n.
  Word valid_mask(index_t slot) const {
    const index_t base = slot * NT;
    if (base + NT <= n) return ~Word{0};
    Word m{0};
    for (index_t j = 0; base + j < n; ++j) m |= msb_bit<Word>(j);
    return m;
  }
};

}  // namespace tilespmspv
