// Packed-byte tiled matrix — the exact intra-tile encoding §3.2.1 of the
// paper describes for nt = 16: each nonzero's local coordinates live in a
// single unsigned char, the high nibble holding the row and the low
// nibble the column. Entries in a tile are stored row-major, so the
// multiply is a flat scan with no per-row pointer chasing.
//
// This is the alternative to TileMatrix's intra-CSR layout; both are kept
// because they trade differently: packed-COO touches one metadata byte
// per nonzero (wins on very sparse tiles), intra-CSR exposes per-row runs
// (wins on dense tiles where the row pointer amortizes). The ablation
// bench bench_ablation_intra_tile quantifies the trade.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "formats/validate.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_chunks.hpp"
#include "tile/tile_vector.hpp"
#include "util/simd.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct PackedTileMatrix {
  static constexpr index_t kNt = 16;  // fixed: two 4-bit coordinates

  // Paper §3.2.1 layout guards: one packed entry is (row << 4) | col, so
  // both local coordinates must fit a nibble and the pair must fill one
  // unsigned char exactly.
  static_assert(kNt <= 16, "local row/col must fit 4 bits each");
  static_assert(sizeof(std::uint8_t) * 8 == 8,
                "packed nibble pair must fill one byte exactly");

  index_t rows = 0;
  index_t cols = 0;
  index_t tile_rows = 0;
  index_t tile_cols = 0;

  std::vector<offset_t> tile_row_ptr;  // CSR over the tile grid
  std::vector<index_t> tile_col_id;
  std::vector<offset_t> tile_nnz_ptr;  // entry ranges per tile
  std::vector<std::uint8_t> packed;    // (row << 4) | col per entry
  std::vector<T> vals;
  std::vector<index_t> row_chunk_ptr;  // work-balanced scheduling chunks

  static std::uint8_t pack(index_t local_row, index_t local_col) {
    return static_cast<std::uint8_t>((local_row << 4) | local_col);
  }
  static index_t unpack_row(std::uint8_t b) { return b >> 4; }
  static index_t unpack_col(std::uint8_t b) { return b & 0xF; }

  index_t num_tiles() const {
    return static_cast<index_t>(tile_col_id.size());
  }

  static PackedTileMatrix from_csr(const Csr<T>& a) {
    PackedTileMatrix m;
    m.rows = a.rows;
    m.cols = a.cols;
    m.tile_rows = ceil_div<index_t>(a.rows, kNt);
    m.tile_cols = ceil_div<index_t>(a.cols, kNt);
    m.tile_row_ptr.assign(m.tile_rows + 1, 0);

    std::vector<offset_t> tile_nnz(m.tile_cols, 0);
    std::vector<index_t> touched;
    std::vector<index_t> all_cols;
    std::vector<offset_t> all_nnz;
    for (index_t tr = 0; tr < m.tile_rows; ++tr) {
      touched.clear();
      const index_t r_end = std::min<index_t>((tr + 1) * kNt, a.rows);
      for (index_t r = tr * kNt; r < r_end; ++r) {
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          const index_t tc = a.col_idx[i] / kNt;
          if (tile_nnz[tc] == 0) touched.push_back(tc);
          ++tile_nnz[tc];
        }
      }
      std::sort(touched.begin(), touched.end());
      for (index_t tc : touched) {
        all_cols.push_back(tc);
        all_nnz.push_back(tile_nnz[tc]);
        tile_nnz[tc] = 0;
      }
      m.tile_row_ptr[tr + 1] =
          m.tile_row_ptr[tr] + static_cast<offset_t>(touched.size());
    }
    const index_t ntiles = static_cast<index_t>(all_cols.size());
    m.tile_col_id = std::move(all_cols);
    m.tile_nnz_ptr.assign(ntiles + 1, 0);
    for (index_t t = 0; t < ntiles; ++t) {
      m.tile_nnz_ptr[t + 1] = m.tile_nnz_ptr[t] + all_nnz[t];
    }
    m.packed.resize(m.tile_nnz_ptr[ntiles]);
    m.vals.resize(m.tile_nnz_ptr[ntiles]);

    std::vector<index_t> slot_of(m.tile_cols, kEmptyTile);
    std::vector<offset_t> cursor;
    for (index_t tr = 0; tr < m.tile_rows; ++tr) {
      const offset_t t_begin = m.tile_row_ptr[tr];
      const offset_t t_end = m.tile_row_ptr[tr + 1];
      for (offset_t t = t_begin; t < t_end; ++t) {
        slot_of[m.tile_col_id[t]] = static_cast<index_t>(t);
      }
      cursor.assign(static_cast<std::size_t>(t_end - t_begin), 0);
      const index_t r_end = std::min<index_t>((tr + 1) * kNt, a.rows);
      for (index_t r = tr * kNt; r < r_end; ++r) {
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          const index_t c = a.col_idx[i];
          const index_t t = slot_of[c / kNt];
          const offset_t pos = m.tile_nnz_ptr[t] + cursor[t - t_begin]++;
          m.packed[pos] = pack(r - tr * kNt, c % kNt);
          m.vals[pos] = a.vals[i];
        }
      }
      for (offset_t t = t_begin; t < t_end; ++t) {
        slot_of[m.tile_col_id[t]] = kEmptyTile;
      }
    }
    m.row_chunk_ptr =
        build_row_chunks(m.tile_rows, m.tile_row_ptr, m.tile_nnz_ptr);
    TILESPMSPV_POSTCONDITION(validate_packed_tile_matrix(m),
                             "PackedTileMatrix::from_csr");
    return m;
  }

  Coo<T> to_coo() const {
    Coo<T> out(rows, cols);
    out.reserve(vals.size());
    for (index_t tr = 0; tr < tile_rows; ++tr) {
      for (offset_t t = tile_row_ptr[tr]; t < tile_row_ptr[tr + 1]; ++t) {
        const index_t c0 = tile_col_id[t] * kNt;
        for (offset_t i = tile_nnz_ptr[t]; i < tile_nnz_ptr[t + 1]; ++i) {
          out.push(tr * kNt + unpack_row(packed[i]),
                   c0 + unpack_col(packed[i]), vals[i]);
        }
      }
    }
    out.sort_row_major();
    return out;
  }
};

/// TileSpMSpV over the packed layout: same work-weighted tile-row chunks
/// and x_ptr skipping as the intra-CSR kernel; the flat per-entry inner
/// scan runs through the SIMD layer for double values (products formed
/// 4-wide, scalar row scatter — see simd::packed_flat_scan).
template <typename T>
SparseVec<T> packed_tile_spmspv(const PackedTileMatrix<T>& a,
                                const TileVector<T>& x,
                                ThreadPool* pool = nullptr) {
  constexpr index_t nt = PackedTileMatrix<T>::kNt;
  assert(x.nt == nt);
  std::vector<T> yd(a.rows, T{});
  std::vector<unsigned char> flag(a.tile_rows, 0);
  std::vector<index_t> fallback;
  const std::vector<index_t>* cp = &a.row_chunk_ptr;
  if (cp->size() < 2) {
    fallback = uniform_row_chunks(a.tile_rows, 8);
    cp = &fallback;
  }
  const auto nchunks = static_cast<index_t>(cp->size()) - 1;
  const index_t* chunk_ptr = cp->data();
  parallel_for(
      nchunks,
      [&](index_t c) {
        T acc[nt];
        for (index_t tr = chunk_ptr[c]; tr < chunk_ptr[c + 1]; ++tr) {
          bool any = false;
          for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
               ++t) {
            const index_t x_offset = x.x_ptr[a.tile_col_id[t]];
            if (x_offset == kEmptyTile) continue;
            const T* xt = &x.x_tile[static_cast<std::size_t>(x_offset) * nt];
            if (!any) {
              for (index_t i = 0; i < nt; ++i) acc[i] = T{};
              any = true;
            }
            const offset_t base = a.tile_nnz_ptr[t];
            const auto n = static_cast<int>(a.tile_nnz_ptr[t + 1] - base);
            if constexpr (std::is_same_v<T, double>) {
              simd::packed_flat_scan(&a.vals[base], &a.packed[base], n, xt,
                                     acc);
            } else {
              for (int i = 0; i < n; ++i) {
                const std::uint8_t b = a.packed[base + i];
                acc[PackedTileMatrix<T>::unpack_row(b)] +=
                    a.vals[base + i] * xt[PackedTileMatrix<T>::unpack_col(b)];
              }
            }
          }
          if (any) {
            const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
            for (index_t r = tr * nt; r < r_end; ++r) {
              yd[r] = acc[r - tr * nt];
            }
            flag[tr] = 1;
          }
        }
      },
      pool, /*chunk=*/1);

  SparseVec<T> y(a.rows);
  index_t flagged = 0;
  for (index_t tr = 0; tr < a.tile_rows; ++tr) flagged += flag[tr] ? 1 : 0;
  y.reserve(static_cast<std::size_t>(flagged) * nt);
  for (index_t tr = 0; tr < a.tile_rows; ++tr) {
    if (!flag[tr]) continue;
    const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
    for (index_t r = tr * nt; r < r_end; ++r) {
      if (yd[r] != T{}) y.push(r, yd[r]);
    }
  }
  return y;
}

}  // namespace tilespmspv
