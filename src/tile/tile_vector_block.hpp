// Block-of-k tiled sparse vectors — the SoA operand of the SpMSpM engine
// (core/tile_spmspm.hpp). k <= 64 vectors of equal length share one tile
// grid: `x_ptr` maps each tile slot to a compact payload position exactly
// like TileVector, but a slot is kept if ANY lane has a nonzero there, and
// `active` stores per-slot lane bitmasks (bit v, lsb-first, = lane v is
// non-empty in this tile) — the nt×k bit-planes the multi-source apps'
// 64-bit source words ride. The payload is lane-interleaved: element i of
// lane v lives at x_tile[(x_ptr[i/nt]*nt + i%nt)*k + v], so one matrix
// nonzero touches k consecutive doubles — the unit stride the engine's
// broadcast-FMA (simd::axpy_lanes) needs.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "formats/sparse_vector.hpp"
#include "formats/validate.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct TileVectorBlock {
  /// Lane capacity: one bit per lane in a 64-bit active word, matching the
  /// bit-parallel MS-BFS convention (bit s = source s, lsb-first).
  static constexpr index_t kMaxLanes = 64;

  index_t n = 0;    // logical length of every lane
  index_t nt = 16;  // tile size
  index_t k = 0;    // lanes (vectors) in the block, <= kMaxLanes
  std::vector<index_t> x_ptr;  // ceil(n/nt) slots: compact index or kEmptyTile
  std::vector<std::uint64_t> active;  // per slot: lane bitmask (bit v = lane v)
  std::vector<T> x_tile;  // non-empty tiles, nt*k lane-interleaved values each

  index_t num_tiles() const { return static_cast<index_t>(x_ptr.size()); }
  index_t num_nonempty_tiles() const {
    return k == 0 ? 0
                  : static_cast<index_t>(x_tile.size() /
                                         (static_cast<std::size_t>(nt) *
                                          static_cast<std::size_t>(k)));
  }

  /// O(1) random access to lane v (zero for elements in dropped tiles).
  T at(index_t v, index_t i) const {
    assert(v >= 0 && v < k && i >= 0 && i < n);
    const index_t slot = x_ptr[i / nt];
    if (slot == kEmptyTile) return T{};
    return x_tile[(static_cast<std::size_t>(slot) * nt +
                   static_cast<std::size_t>(i % nt)) *
                      static_cast<std::size_t>(k) +
                  static_cast<std::size_t>(v)];
  }

  /// Packs k already-tiled vectors (equal n and nt) into the SoA block.
  /// The tile-order slot numbering matches TileVector::from_sparse.
  static TileVectorBlock from_tiled(const TileVector<T>* xs, index_t k,
                                    ThreadPool* pool = nullptr) {
    assert(k >= 0 && k <= kMaxLanes);
    TileVectorBlock b;
    b.k = k;
    if (k == 0) return b;
    b.n = xs[0].n;
    b.nt = xs[0].nt;
    for (index_t v = 1; v < k; ++v) {
      assert(xs[v].n == b.n && xs[v].nt == b.nt);
    }
    const index_t tiles = ceil_div(b.n, b.nt);
    b.active.assign(static_cast<std::size_t>(tiles), 0);
    b.x_ptr.assign(static_cast<std::size_t>(tiles), kEmptyTile);
    // Bit-planes: each slot's word is owned by one loop iteration, so the
    // lane OR needs no atomics.
    parallel_for(
        tiles,
        [&](index_t t) {
          std::uint64_t word = 0;
          for (index_t v = 0; v < k; ++v) {
            if (xs[v].x_ptr[t] != kEmptyTile) word |= std::uint64_t{1} << v;
          }
          b.active[static_cast<std::size_t>(t)] = word;
        },
        pool);
    // Compact slot numbering over the union of the lanes' non-empty tiles.
    index_t slots = 0;
    for (index_t t = 0; t < tiles; ++t) {
      if (b.active[static_cast<std::size_t>(t)] != 0) b.x_ptr[t] = slots++;
    }
    // Lane-interleaved payload fill; each non-empty slot owns a disjoint
    // nt*k region, so slots transpose their lanes' tiles in parallel.
    b.x_tile.assign(static_cast<std::size_t>(slots) * b.nt *
                        static_cast<std::size_t>(k),
                    T{});
    parallel_for(
        tiles,
        [&](index_t t) {
          const index_t slot = b.x_ptr[t];
          if (slot == kEmptyTile) return;
          T* dst = b.x_tile.data() + static_cast<std::size_t>(slot) * b.nt *
                                         static_cast<std::size_t>(k);
          std::uint64_t bits = b.active[static_cast<std::size_t>(t)];
          while (bits != 0) {
            const auto v = static_cast<index_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const T* src =
                xs[v].x_tile.data() +
                static_cast<std::size_t>(xs[v].x_ptr[t]) * b.nt;
            for (index_t i = 0; i < b.nt; ++i) {
              dst[static_cast<std::size_t>(i) * k + v] = src[i];
            }
          }
        },
        pool);
    TILESPMSPV_POSTCONDITION(validate_tile_vector_block(b),
                             "TileVectorBlock::from_tiled");
    return b;
  }

  static TileVectorBlock from_tiled(const std::vector<TileVector<T>>& xs,
                                    ThreadPool* pool = nullptr) {
    return from_tiled(xs.data(), static_cast<index_t>(xs.size()), pool);
  }

  /// Builds the block straight from plain sparse vectors; the per-lane
  /// TileVector conversions run in parallel (they are independent).
  static TileVectorBlock from_sparse(const std::vector<SparseVec<T>>& xs,
                                     index_t nt, ThreadPool* pool = nullptr) {
    const auto k = static_cast<index_t>(xs.size());
    assert(k <= kMaxLanes);
    std::vector<TileVector<T>> tiled(static_cast<std::size_t>(k));
    parallel_for(
        k,
        [&](index_t v) {
          tiled[static_cast<std::size_t>(v)] =
              TileVector<T>::from_sparse(xs[static_cast<std::size_t>(v)], nt);
        },
        pool, /*chunk=*/1);
    return from_tiled(tiled.data(), k, pool);
  }

  /// Extracts lane v back to plain sparse form (exact zeros dropped).
  SparseVec<T> to_sparse(index_t v) const {
    assert(v >= 0 && v < k);
    SparseVec<T> x(n);
    const std::uint64_t bit = std::uint64_t{1} << v;
    for (index_t t = 0; t < num_tiles(); ++t) {
      if ((active[static_cast<std::size_t>(t)] & bit) == 0) continue;
      const index_t base = t * nt;
      for (index_t j = 0; j < nt && base + j < n; ++j) {
        const T val = at(v, base + j);
        if (val != T{}) x.push(base + j, val);
      }
    }
    return x;
  }
};

}  // namespace tilespmspv
