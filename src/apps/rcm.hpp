// Reverse Cuthill-McKee ordering — one of the SpMSpV-accelerated graph
// algorithms the paper's introduction cites (Azad et al., IPDPS'17 do it
// distributed; here the level structure comes from the library's BFS).
//
// RCM renumbers a symmetric matrix to reduce bandwidth: starting from a
// pseudo-peripheral vertex, vertices are visited level by level (BFS),
// within a level ordered by degree, and the final order is reversed.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "bfs/tile_bfs.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Locates a pseudo-peripheral vertex with the George-Liu algorithm:
/// repeat BFS from the farthest minimum-degree vertex of the last level
/// until the eccentricity stops growing.
template <typename T>
index_t pseudo_peripheral_vertex(const Csr<T>& a, const TileBfs& bfs,
                                 index_t start) {
  index_t v = start;
  index_t ecc = -1;
  for (int round = 0; round < 8; ++round) {  // converges in 2-3 in practice
    const BfsResult r = bfs.run(v);
    index_t max_level = 0;
    for (index_t l : r.levels) max_level = std::max(max_level, l);
    if (max_level <= ecc) break;
    ecc = max_level;
    // Minimum-degree vertex of the last level.
    index_t best = v;
    index_t best_deg = a.rows + 1;
    for (index_t u = 0; u < a.rows; ++u) {
      if (r.levels[u] == max_level && a.row_nnz(u) < best_deg) {
        best = u;
        best_deg = a.row_nnz(u);
      }
    }
    v = best;
  }
  return v;
}

/// RCM permutation: perm[k] = old index of the vertex placed at position
/// k. Handles disconnected graphs (each component ordered from its own
/// pseudo-peripheral start). The input must be structurally symmetric.
template <typename T>
std::vector<index_t> rcm_ordering(const Csr<T>& a) {
  const index_t n = a.rows;
  TileBfs bfs(a);
  std::vector<index_t> perm;
  perm.reserve(n);
  std::vector<bool> placed(n, false);

  for (index_t seed = 0; seed < n; ++seed) {
    if (placed[seed]) continue;
    const index_t start = pseudo_peripheral_vertex(a, bfs, seed);
    const BfsResult r = bfs.run(start);
    // Cuthill-McKee: levels ascending, degree ascending within a level,
    // discovery order as the tiebreaker (stable sort keeps it).
    std::vector<index_t> comp;
    for (index_t u = 0; u < n; ++u) {
      if (r.levels[u] >= 0 && !placed[u]) comp.push_back(u);
    }
    std::stable_sort(comp.begin(), comp.end(), [&](index_t x, index_t y) {
      if (r.levels[x] != r.levels[y]) return r.levels[x] < r.levels[y];
      return a.row_nnz(x) < a.row_nnz(y);
    });
    for (index_t u : comp) {
      placed[u] = true;
      perm.push_back(u);
    }
  }
  std::reverse(perm.begin(), perm.end());  // the "reverse" in RCM
  return perm;
}

/// Bandwidth of a matrix: max |i - j| over nonzeros.
template <typename T>
index_t bandwidth(const Csr<T>& a) {
  index_t b = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      b = std::max(b, std::abs(r - a.col_idx[i]));
    }
  }
  return b;
}

/// Applies a permutation symmetrically: B = P A Pᵀ where row perm[k] of A
/// becomes row k of B.
template <typename T>
Csr<T> permute_symmetric(const Csr<T>& a, const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    inv[perm[k]] = static_cast<index_t>(k);
  }
  Coo<T> out(a.rows, a.cols);
  out.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      out.push(inv[r], inv[a.col_idx[i]], a.vals[i]);
    }
  }
  out.sort_row_major();
  return Csr<T>::from_coo(out);
}

}  // namespace tilespmspv
