// Triangle counting via tiled sparse linear algebra: for a simple
// undirected graph with 0/1 adjacency A, the number of triangles is
// sum(A .* A²) / 6 — every triangle contributes one 2-path i→k→j per
// ordered adjacent pair (i, j), and each triangle has six ordered pairs.
// A² comes from the tiled SpGEMM, the elementwise mask from a merged row
// scan, so this is the canonical algebraic graph kernel composed from the
// repo's substrates (the GraphBLAS "cohesive-subgraph" pattern).
#pragma once

#include <cstdint>

#include "formats/csr.hpp"
#include "spgemm/tile_spgemm.hpp"
#include "util/types.hpp"

namespace tilespmspv {

namespace detail {

/// 0/1 pattern of `a` with the diagonal removed (self-loops are not part
/// of any triangle but would corrupt the A .* A² count).
template <typename T>
Csr<T> simple_pattern(const Csr<T>& a) {
  Coo<T> coo(a.rows, a.cols);
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      if (a.col_idx[i] != r) coo.push(r, a.col_idx[i], T{1});
    }
  }
  return Csr<T>::from_coo(coo);
}

}  // namespace detail

/// Counts triangles of a simple undirected graph (`a` symmetric; values
/// and self-loops are normalized away internally).
template <typename T>
std::uint64_t count_triangles(const Csr<T>& a, index_t nt = 16,
                              ThreadPool* pool = nullptr) {
  assert(a.rows == a.cols);
  const Csr<T> pattern = detail::simple_pattern(a);
  const Csr<T> a2 = tile_spgemm(pattern, pattern, nt, pool);

  // sum(A .* A2): for each row, merge the sorted column lists.
  double total = 0.0;
  for (index_t r = 0; r < a.rows; ++r) {
    offset_t i = pattern.row_ptr[r];
    offset_t j = a2.row_ptr[r];
    while (i < pattern.row_ptr[r + 1] && j < a2.row_ptr[r + 1]) {
      if (pattern.col_idx[i] < a2.col_idx[j]) {
        ++i;
      } else if (a2.col_idx[j] < pattern.col_idx[i]) {
        ++j;
      } else {
        total += static_cast<double>(a2.vals[j]);
        ++i;
        ++j;
      }
    }
  }
  return static_cast<std::uint64_t>(total / 6.0 + 0.5);
}

/// Per-vertex triangle participation (the clustering-coefficient
/// numerator): tri[v] = number of triangles containing v.
template <typename T>
std::vector<std::uint64_t> triangles_per_vertex(const Csr<T>& a,
                                                index_t nt = 16,
                                                ThreadPool* pool = nullptr) {
  const Csr<T> pattern = detail::simple_pattern(a);
  const Csr<T> a2 = tile_spgemm(pattern, pattern, nt, pool);
  std::vector<std::uint64_t> tri(a.rows, 0);
  for (index_t r = 0; r < a.rows; ++r) {
    double row_total = 0.0;
    offset_t i = pattern.row_ptr[r];
    offset_t j = a2.row_ptr[r];
    while (i < pattern.row_ptr[r + 1] && j < a2.row_ptr[r + 1]) {
      if (pattern.col_idx[i] < a2.col_idx[j]) {
        ++i;
      } else if (a2.col_idx[j] < pattern.col_idx[i]) {
        ++j;
      } else {
        row_total += static_cast<double>(a2.vals[j]);
        ++i;
        ++j;
      }
    }
    tri[r] = static_cast<std::uint64_t>(row_total / 2.0 + 0.5);
  }
  return tri;
}

}  // namespace tilespmspv
