// Algebraic BFS (paper Algorithm 3): breadth-first search expressed as a
// loop of SpMSpV operations over the numeric tiled kernels. One SpMSpV
// per layer expands the frontier; a visited mask filters re-discoveries.
// This is the GraphBLAS-style formulation the paper's background section
// presents — TileBfs (bfs/tile_bfs.hpp) is the specialized bitmask
// implementation of the same recurrence; both must produce identical
// level sets, which the tests exploit.
#pragma once

#include <vector>

#include "core/spmspv.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// BFS levels (-1 = unreachable) computed with repeated SpMSpV.
/// `a` is the adjacency matrix with A[i][j] != 0 <=> edge j -> i, the
/// same convention as TileBfs. The visited filter runs as a fused output
/// mask (y<!visited> = A x), so rediscovered vertices never materialize.
template <typename T = value_t>
std::vector<index_t> algebraic_bfs(SpmspvOperator<T>& op, index_t n,
                                   index_t source) {
  std::vector<index_t> levels(n, -1);
  std::vector<bool> visited(n, false);
  levels[source] = 0;
  visited[source] = true;
  SparseVec<T> x(n);
  x.push(source, T{1});

  for (index_t level = 1; x.nnz() > 0; ++level) {
    // Paper Alg. 3 line 2, with lines 3-6's filter fused as the mask.
    SparseVec<T> next = op.multiply_masked(x, visited, /*complement=*/true);
    for (std::size_t k = 0; k < next.idx.size(); ++k) {
      const index_t i = next.idx[k];
      levels[i] = level;
      visited[i] = true;
      next.vals[k] = T{1};
    }
    x = std::move(next);
  }
  return levels;
}

/// Convenience overload building the operator internally. The operator is
/// built on the 0/1 pattern of `a` so that value cancellation can never
/// hide an edge (reachability is symbolic).
template <typename T = value_t>
std::vector<index_t> algebraic_bfs(const Csr<T>& a, index_t source,
                                   SpmspvConfig cfg = {},
                                   ThreadPool* pool = nullptr) {
  Csr<T> pattern = a;
  for (auto& v : pattern.vals) v = T{1};
  SpmspvOperator<T> op(pattern, cfg, pool);
  return algebraic_bfs(op, a.rows, source);
}

}  // namespace tilespmspv
