// Betweenness centrality for unweighted graphs — the second graph
// algorithm the paper's introduction cites as SpMSpV-accelerated
// (Solomonik et al., SC'17 scale it with sparse matrix multiplication).
//
// Brandes' algorithm in its level-synchronous algebraic form: the forward
// sweep counts shortest paths with one SpMSpV per level (sigma_next =
// A · sigma_frontier, masked to the new level), the backward sweep
// accumulates dependencies level by level. The per-level frontiers are
// kept as sparse vectors throughout, which is exactly the workload
// SpMSpV exists for.
#pragma once

#include <vector>

#include "core/spmspv.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Single-source dependency accumulation (one Brandes iteration).
/// Returns the dependency score delta[v] for every v != source.
template <typename T = value_t>
std::vector<double> bc_single_source(SpmspvOperator<T>& op,
                                     const Csr<T>& a, index_t source) {
  const index_t n = a.rows;
  std::vector<index_t> level(n, -1);
  std::vector<double> sigma(n, 0.0);  // shortest-path counts
  level[source] = 0;
  sigma[source] = 1.0;

  // Forward: one SpMSpV per level, carrying sigma values in the frontier.
  std::vector<SparseVec<T>> frontiers;
  SparseVec<T> x(n);
  x.push(source, T{1});
  frontiers.push_back(x);
  for (index_t d = 1; x.nnz() > 0; ++d) {
    const SparseVec<T> y = op.multiply(x);  // y_i = sum of sigma over preds
    SparseVec<T> next(n);
    for (std::size_t k = 0; k < y.idx.size(); ++k) {
      const index_t v = y.idx[k];
      if (level[v] < 0) {
        level[v] = d;
        sigma[v] = static_cast<double>(y.vals[k]);
        next.push(v, y.vals[k]);
      }
    }
    x = std::move(next);
    if (x.nnz() > 0) frontiers.push_back(x);
  }

  // Backward: delta[v] = sum over successors w (level[w] = level[v]+1,
  // edge v->w) of sigma[v]/sigma[w] * (1 + delta[w]).
  std::vector<double> delta(n, 0.0);
  for (auto it = frontiers.rbegin(); it != frontiers.rend(); ++it) {
    for (index_t v : it->idx) {
      double acc = 0.0;
      // Successors of v: out-neighbors at the next level. Out-neighbors of
      // v are column v of A = row v of Aᵀ; the operator's transposed tile
      // matrix exists, but a plain CSR row scan keeps this reference-clear
      // (the forward sweep carries the SpMSpV work).
      for (offset_t i = a.row_ptr[v]; i < a.row_ptr[v + 1]; ++i) {
        const index_t w = a.col_idx[i];
        if (level[w] == level[v] + 1 && sigma[w] > 0.0) {
          acc += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      delta[v] = acc;
    }
  }
  delta[source] = 0.0;
  return delta;
}

/// Betweenness centrality from a set of source vertices (exact when
/// `sources` covers every vertex; a sampled approximation otherwise).
/// For undirected graphs pass halve=true to apply the conventional /2.
template <typename T = value_t>
std::vector<double> betweenness_centrality(const Csr<T>& a,
                                           const std::vector<index_t>& sources,
                                           bool halve = true,
                                           SpmspvConfig cfg = {},
                                           ThreadPool* pool = nullptr) {
  // Note the adjacency convention: op.multiply expands along edges j -> i
  // for A[i][j] != 0. The backward sweep above scans rows of `a` as
  // out-neighbors, which matches symmetric (undirected) graphs; for
  // directed graphs pass the pattern-symmetrized matrix.
  //
  // Path counting needs unit weights, so the operator is built on the 0/1
  // pattern of `a` regardless of its stored values.
  Csr<T> pattern = a;
  for (auto& v : pattern.vals) v = T{1};
  SpmspvOperator<T> op(pattern, cfg, pool);
  std::vector<double> bc(a.rows, 0.0);
  for (index_t s : sources) {
    const std::vector<double> delta = bc_single_source(op, a, s);
    for (index_t v = 0; v < a.rows; ++v) bc[v] += delta[v];
  }
  if (halve) {
    for (double& v : bc) v *= 0.5;
  }
  return bc;
}

}  // namespace tilespmspv
