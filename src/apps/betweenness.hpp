// Betweenness centrality for unweighted graphs — the second graph
// algorithm the paper's introduction cites as SpMSpV-accelerated
// (Solomonik et al., SC'17 scale it with sparse matrix multiplication).
//
// Brandes' algorithm in its level-synchronous algebraic form: the forward
// sweep counts shortest paths with one SpMSpV per level (sigma_next =
// A · sigma_frontier, masked to the new level), the backward sweep
// accumulates dependencies level by level. The per-level frontiers are
// kept as sparse vectors throughout, which is exactly the workload
// SpMSpV exists for.
//
// Multi-source runs batch the forward sweep through the block-of-k SpMSpM
// engine: up to 64 sources' sigma frontiers ride one TileVectorBlock per
// level, so the matrix traversal, tile metadata, and payload bytes are
// paid once per level for the whole block instead of once per source.
#pragma once

#include <algorithm>
#include <vector>

#include "core/spmspv.hpp"
#include "core/tile_spmspm.hpp"
#include "formats/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_vector_block.hpp"
#include "util/types.hpp"

namespace tilespmspv {

namespace detail {

/// Brandes backward sweep: delta[v] = sum over successors w
/// (level[w] = level[v]+1, edge v->w) of sigma[v]/sigma[w]*(1 + delta[w]),
/// walking the stored per-level frontiers deepest-first.
/// Successors of v: out-neighbors at the next level. Out-neighbors of v
/// are column v of A = row v of Aᵀ; the operator's transposed tile matrix
/// exists, but a plain CSR row scan keeps this reference-clear (the
/// forward sweep carries the SpMSpV work).
template <typename T>
std::vector<double> bc_backward(const Csr<T>& a,
                                const std::vector<index_t>& level,
                                const std::vector<double>& sigma,
                                const std::vector<SparseVec<T>>& frontiers,
                                index_t source) {
  std::vector<double> delta(static_cast<std::size_t>(a.rows), 0.0);
  for (auto it = frontiers.rbegin(); it != frontiers.rend(); ++it) {
    for (index_t v : it->idx) {
      double acc = 0.0;
      for (offset_t i = a.row_ptr[v]; i < a.row_ptr[v + 1]; ++i) {
        const index_t w = a.col_idx[i];
        if (level[w] == level[v] + 1 && sigma[w] > 0.0) {
          acc += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      delta[v] = acc;
    }
  }
  delta[source] = 0.0;
  return delta;
}

}  // namespace detail

/// Single-source dependency accumulation (one Brandes iteration).
/// Returns the dependency score delta[v] for every v != source.
template <typename T = value_t>
std::vector<double> bc_single_source(SpmspvOperator<T>& op,
                                     const Csr<T>& a, index_t source) {
  const index_t n = a.rows;
  std::vector<index_t> level(n, -1);
  std::vector<double> sigma(n, 0.0);  // shortest-path counts
  level[source] = 0;
  sigma[source] = 1.0;

  // Forward: one SpMSpV per level, carrying sigma values in the frontier.
  std::vector<SparseVec<T>> frontiers;
  SparseVec<T> x(n);
  x.push(source, T{1});
  frontiers.push_back(x);
  for (index_t d = 1; x.nnz() > 0; ++d) {
    const SparseVec<T> y = op.multiply(x);  // y_i = sum of sigma over preds
    SparseVec<T> next(n);
    for (std::size_t k = 0; k < y.idx.size(); ++k) {
      const index_t v = y.idx[k];
      if (level[v] < 0) {
        level[v] = d;
        sigma[v] = static_cast<double>(y.vals[k]);
        next.push(v, y.vals[k]);
      }
    }
    x = std::move(next);
    if (x.nnz() > 0) frontiers.push_back(x);
  }

  return detail::bc_backward(a, level, sigma, frontiers, source);
}

/// Per-source dependency accumulation for a block of <= 64 sources. The
/// forward sweeps run level-synchronously through tile_spmspm — one block
/// multiply per level for all lanes — then each lane runs its backward
/// sweep independently (parallel over lanes). Per source, the result
/// equals bc_single_source up to floating-point summation order.
template <typename T = value_t>
std::vector<std::vector<double>> bc_multi_source(
    SpmspvOperator<T>& op, const Csr<T>& a,
    const std::vector<index_t>& sources, ThreadPool* pool = nullptr) {
  const index_t n = a.rows;
  const auto k = static_cast<index_t>(sources.size());
  assert(k <= TileVectorBlock<T>::kMaxLanes);
  const index_t nt = op.matrix().nt;

  std::vector<std::vector<index_t>> level(
      static_cast<std::size_t>(k), std::vector<index_t>(n, -1));
  std::vector<std::vector<double>> sigma(
      static_cast<std::size_t>(k), std::vector<double>(n, 0.0));
  std::vector<std::vector<SparseVec<T>>> hist(static_cast<std::size_t>(k));
  std::vector<SparseVec<T>> x(static_cast<std::size_t>(k), SparseVec<T>(n));
  for (index_t s = 0; s < k; ++s) {
    const index_t src = sources[static_cast<std::size_t>(s)];
    level[static_cast<std::size_t>(s)][src] = 0;
    sigma[static_cast<std::size_t>(s)][src] = 1.0;
    x[static_cast<std::size_t>(s)].push(src, T{1});
    hist[static_cast<std::size_t>(s)].push_back(x[static_cast<std::size_t>(s)]);
  }

  // Forward, batched: lanes whose traversal has converged carry empty
  // frontiers (empty lanes in the block cost nothing), so the loop runs
  // until the deepest lane finishes.
  SpmspmWorkspace<T> ws;
  bool any = k > 0;
  for (index_t d = 1; any; ++d) {
    const TileVectorBlock<T> xb = TileVectorBlock<T>::from_sparse(x, nt, pool);
    std::vector<SparseVec<T>> ys = tile_spmspm(op.matrix(), xb, ws, pool);
    // Commit per lane: lanes own disjoint level/sigma/frontier state.
    parallel_for(
        k,
        [&](index_t s) {
          const auto si = static_cast<std::size_t>(s);
          const SparseVec<T>& y = ys[si];
          SparseVec<T> next(n);
          for (std::size_t e = 0; e < y.idx.size(); ++e) {
            const index_t v = y.idx[e];
            if (level[si][v] < 0) {
              level[si][v] = d;
              sigma[si][v] = static_cast<double>(y.vals[e]);
              next.push(v, y.vals[e]);
            }
          }
          x[si] = std::move(next);
          if (x[si].nnz() > 0) hist[si].push_back(x[si]);
        },
        pool, /*chunk=*/1);
    any = false;
    for (index_t s = 0; s < k; ++s) {
      any = any || x[static_cast<std::size_t>(s)].nnz() > 0;
    }
  }

  // Backward, per lane.
  std::vector<std::vector<double>> deltas(static_cast<std::size_t>(k));
  parallel_for(
      k,
      [&](index_t s) {
        const auto si = static_cast<std::size_t>(s);
        deltas[si] = detail::bc_backward(a, level[si], sigma[si], hist[si],
                                         sources[si]);
      },
      pool, /*chunk=*/1);
  return deltas;
}

/// Betweenness centrality from a set of source vertices (exact when
/// `sources` covers every vertex; a sampled approximation otherwise).
/// For undirected graphs pass halve=true to apply the conventional /2.
template <typename T = value_t>
std::vector<double> betweenness_centrality(const Csr<T>& a,
                                           const std::vector<index_t>& sources,
                                           bool halve = true,
                                           SpmspvConfig cfg = {},
                                           ThreadPool* pool = nullptr) {
  // Note the adjacency convention: op.multiply expands along edges j -> i
  // for A[i][j] != 0. The backward sweep above scans rows of `a` as
  // out-neighbors, which matches symmetric (undirected) graphs; for
  // directed graphs pass the pattern-symmetrized matrix.
  //
  // Path counting needs unit weights, so the operator is built on the 0/1
  // pattern of `a` regardless of its stored values.
  Csr<T> pattern = a;
  for (auto& v : pattern.vals) v = T{1};
  SpmspvOperator<T> op(pattern, cfg, pool);
  std::vector<double> bc(static_cast<std::size_t>(a.rows), 0.0);
  const auto ns = static_cast<index_t>(sources.size());
  const index_t block = TileVectorBlock<T>::kMaxLanes;
  for (index_t base = 0; base < ns; base += block) {
    const auto e = std::min<index_t>(base + block, ns);
    const std::vector<index_t> chunk(
        sources.begin() + static_cast<std::ptrdiff_t>(base),
        sources.begin() + static_cast<std::ptrdiff_t>(e));
    const std::vector<std::vector<double>> deltas =
        bc_multi_source(op, a, chunk, pool);
    for (const auto& delta : deltas) {
      for (index_t v = 0; v < a.rows; ++v) {
        bc[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
      }
    }
  }
  if (halve) {
    for (double& v : bc) v *= 0.5;
  }
  return bc;
}

}  // namespace tilespmspv
