// Personalized PageRank with sparse residual propagation — the machine-
// learning-flavoured SpMSpV workload (local graph clustering, GNN
// preprocessing). The residual vector r starts as the sparse seed
// distribution and is propagated through the column-stochastic adjacency
// with one SpMSpV per step; entries below the tolerance are dropped, so r
// stays sparse and each step's cost tracks the touched neighborhood, not
// the graph size.
//
//   p_{t+1} = p_t + (1 - alpha) * r_t
//   r_{t+1} = alpha * P * r_t      (P column-stochastic, truncated at eps)
#pragma once

#include <cmath>
#include <vector>

#include "core/spmspv.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct PprConfig {
  double alpha = 0.85;    // damping (probability of continuing the walk)
  double epsilon = 1e-7;  // residual-mass truncation per entry
  int max_iterations = 100;
};

struct PprResult {
  SparseVec<value_t> scores;  // approximate PPR mass per vertex
  int iterations = 0;
  double truncated_mass = 0.0;  // total mass dropped by the eps cutoff
};

/// Builds the column-stochastic propagation matrix P from an adjacency
/// pattern: P[i][j] = 1/outdeg(j) for each edge j -> i (the library's
/// convention makes columns the "from" side). Dangling columns stay zero,
/// losing their mass — standard for truncated push-style PPR.
template <typename T>
Csr<T> column_stochastic(const Csr<T>& a) {
  // Column sums via one pass; outdeg(j) = number of stored entries in
  // column j (pattern semantics: values are replaced, not scaled).
  std::vector<index_t> outdeg(a.cols, 0);
  for (const index_t j : a.col_idx) ++outdeg[j];
  Csr<T> p = a;
  for (offset_t i = 0; i < p.nnz(); ++i) {
    p.vals[i] = T{1} / static_cast<T>(outdeg[p.col_idx[i]]);
  }
  return p;
}

/// Approximate personalized PageRank from a sparse seed distribution
/// (seed values should sum to 1; they are used as-is).
template <typename T = value_t>
PprResult personalized_pagerank(const Csr<T>& adjacency,
                                const SparseVec<T>& seeds,
                                PprConfig cfg = {},
                                ThreadPool* pool = nullptr) {
  Csr<T> p = column_stochastic(adjacency);
  SpmspvOperator<T> op(p, {}, pool);

  const index_t n = adjacency.rows;
  std::vector<double> scores(n, 0.0);
  PprResult out;
  SparseVec<T> r = seeds;
  for (out.iterations = 0;
       r.nnz() > 0 && out.iterations < cfg.max_iterations;
       ++out.iterations) {
    // Deposit (1-alpha) of the residual into the scores.
    for (std::size_t k = 0; k < r.idx.size(); ++k) {
      scores[r.idx[k]] += (1.0 - cfg.alpha) * static_cast<double>(r.vals[k]);
    }
    // Propagate the remaining alpha fraction one step and truncate.
    SparseVec<T> pushed = op.multiply(r);
    SparseVec<T> next(n);
    for (std::size_t k = 0; k < pushed.idx.size(); ++k) {
      const double mass = cfg.alpha * static_cast<double>(pushed.vals[k]);
      if (mass >= cfg.epsilon) {
        next.push(pushed.idx[k], static_cast<T>(mass));
      } else {
        out.truncated_mass += mass;
      }
    }
    r = std::move(next);
  }
  // Any residual left at the iteration cap is folded in as-is.
  for (std::size_t k = 0; k < r.idx.size(); ++k) {
    scores[r.idx[k]] += static_cast<double>(r.vals[k]);
  }
  out.scores = SparseVec<T>(n);
  for (index_t v = 0; v < n; ++v) {
    if (scores[v] > 0.0) out.scores.push(v, static_cast<T>(scores[v]));
  }
  return out;
}

}  // namespace tilespmspv
