// Connected components of an undirected graph via repeated TileBFS — the
// standard composition of the traversal primitive (each unvisited vertex
// seeds a BFS; everything it reaches shares its component id).
#pragma once

#include <vector>

#include "bfs/tile_bfs.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct ComponentsResult {
  std::vector<index_t> component;  // per-vertex component id (0-based)
  index_t count = 0;
};

/// `a` must be structurally symmetric (undirected graph).
template <typename T>
ComponentsResult connected_components(const Csr<T>& a,
                                      TileBfsConfig cfg = {},
                                      ThreadPool* pool = nullptr) {
  TileBfs bfs(a, cfg, pool);
  ComponentsResult out;
  out.component.assign(a.rows, -1);
  for (index_t seed = 0; seed < a.rows; ++seed) {
    if (out.component[seed] >= 0) continue;
    const BfsResult r = bfs.run(seed);
    for (index_t v = 0; v < a.rows; ++v) {
      if (r.levels[v] >= 0) out.component[v] = out.count;
    }
    ++out.count;
  }
  return out;
}

}  // namespace tilespmspv
