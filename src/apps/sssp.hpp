// Single-source shortest paths on the tiled SpMSpV primitive: sparse
// Bellman-Ford over the min-plus semiring. Each round relaxes exactly the
// vertices whose distance improved last round (the sparse frontier), with
// one semiring SpMSpV per round — the linear-algebra formulation of SSSP
// that GraphBLAS popularized, running on the paper's tiled storage.
#pragma once

#include <limits>
#include <vector>

#include "core/tile_spmspv_semiring.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct SsspResult {
  std::vector<double> dist;  // +inf for unreachable
  int rounds = 0;            // relaxation rounds until fixpoint
};

/// `a` holds edge weights with the library's adjacency convention
/// (A[i][j] = weight of edge j -> i). Weights must be non-negative for
/// the round bound to be the graph's hop diameter; negative edges are
/// still handled as long as no negative cycle is reachable (plain
/// Bellman-Ford semantics, at most n-1 rounds enforced).
template <typename T = value_t>
SsspResult sssp(const Csr<T>& a, index_t source, index_t nt = 16,
                ThreadPool* pool = nullptr) {
  const index_t n = a.rows;
  SemiringOperator<MinPlus<T>, T> op(a, nt, /*extract_threshold=*/2, pool);

  SsspResult out;
  out.dist.assign(n, std::numeric_limits<double>::infinity());
  out.dist[source] = 0.0;

  SparseVec<T> frontier(n);
  frontier.push(source, T{0});
  while (frontier.nnz() > 0 && out.rounds < n) {
    ++out.rounds;
    const SparseVec<T> relaxed = op.multiply(frontier);
    SparseVec<T> next(n);
    for (std::size_t k = 0; k < relaxed.idx.size(); ++k) {
      const index_t v = relaxed.idx[k];
      const double d = static_cast<double>(relaxed.vals[k]);
      if (d < out.dist[v]) {
        out.dist[v] = d;
        next.push(v, relaxed.vals[k]);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

}  // namespace tilespmspv
