// Bit-parallel multi-source BFS (Then et al., VLDB'14 style): up to 64
// sources traverse simultaneously, one bit per source in a machine word
// per vertex. All sources share each edge scan, so the cost of k
// traversals approaches that of one — the standard way to batch the BFS
// fan-out of betweenness centrality and all-pairs distance sketches.
//
// This operates on the plain CSR out-edge structure (it is an
// application-layer composition, like apps/rcm.hpp); the single-source
// tiled traversal lives in bfs/tile_bfs.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "formats/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct MsBfsResult {
  /// levels[s][v] = BFS level of vertex v from sources[s]; -1 unreachable.
  std::vector<std::vector<index_t>> levels;
  int rounds = 0;
};

/// `out_edges`: row u lists the out-neighbors of u. At most 64 sources.
template <typename T>
MsBfsResult ms_bfs(const Csr<T>& out_edges,
                   const std::vector<index_t>& sources,
                   ThreadPool* pool = nullptr) {
  const index_t n = out_edges.rows;
  const int k = static_cast<int>(sources.size());
  MsBfsResult out;
  out.levels.assign(k, std::vector<index_t>(n, -1));
  if (k == 0) return out;
  if (k > 64) {
    throw std::invalid_argument("ms_bfs: at most 64 sources per batch");
  }

  std::vector<std::uint64_t> seen(n, 0);   // bit s: visited by source s
  std::vector<std::uint64_t> visit(n, 0);  // current frontier membership
  std::vector<std::uint64_t> next(n, 0);
  std::vector<index_t> frontier;  // vertices with visit != 0
  for (int s = 0; s < k; ++s) {
    const index_t src = sources[s];
    seen[src] |= std::uint64_t{1} << s;
    if (visit[src] == 0) frontier.push_back(src);
    visit[src] |= std::uint64_t{1} << s;
    out.levels[s][src] = 0;
  }

  for (index_t level = 1; !frontier.empty(); ++level) {
    ++out.rounds;
    // Expand: every frontier vertex broadcasts its source set to its
    // out-neighbors (one edge scan shared by all k traversals).
    parallel_for(
        static_cast<index_t>(frontier.size()),
        [&](index_t fi) {
          const index_t u = frontier[fi];
          const std::uint64_t w = visit[u];
          for (offset_t i = out_edges.row_ptr[u];
               i < out_edges.row_ptr[u + 1]; ++i) {
            const index_t v = out_edges.col_idx[i];
            // Only sources that have not seen v yet matter; pre-filtering
            // avoids most atomics on converged vertices.
            const std::uint64_t fresh = w & ~atomic_load(&seen[v]);
            if (fresh != 0) atomic_or(&next[v], fresh);
          }
        },
        pool, /*chunk=*/32);

    // Fold: commit newly discovered (vertex, source) pairs.
    frontier.clear();
    for (index_t v = 0; v < n; ++v) {
      const std::uint64_t fresh = next[v] & ~seen[v];
      next[v] = 0;
      if (fresh == 0) continue;
      seen[v] |= fresh;
      visit[v] = fresh;
      frontier.push_back(v);
      std::uint64_t bits = fresh;
      while (bits != 0) {
        const int s = std::countr_zero(bits);
        bits &= bits - 1;
        out.levels[s][v] = level;
      }
    }
  }
  return out;
}

}  // namespace tilespmspv
