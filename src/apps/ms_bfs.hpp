// Bit-parallel multi-source BFS (Then et al., VLDB'14 style): up to 64
// sources traverse simultaneously, one bit per source in a machine word
// per vertex. All sources share each edge scan, so the cost of k
// traversals approaches that of one — the standard way to batch the BFS
// fan-out of betweenness centrality and all-pairs distance sketches.
//
// Two variants share the result shape: ms_bfs expands on the plain CSR
// out-edge structure (an application-layer composition, like apps/rcm.hpp);
// ms_bfs_tiled drives the same level-synchronous traversal through the
// block-of-k SpMSpM engine, whose per-tile-slot 64-bit active words ARE the
// source-set bit-planes — one tiled matrix pass per level serves all
// sources. The single-source tiled traversal lives in bfs/tile_bfs.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/spmspv.hpp"
#include "core/tile_spmspm.hpp"
#include "formats/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector_block.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct MsBfsResult {
  /// levels[s][v] = BFS level of vertex v from sources[s]; -1 unreachable.
  std::vector<std::vector<index_t>> levels;
  int rounds = 0;
};

/// `out_edges`: row u lists the out-neighbors of u. At most 64 sources.
template <typename T>
MsBfsResult ms_bfs(const Csr<T>& out_edges,
                   const std::vector<index_t>& sources,
                   ThreadPool* pool = nullptr) {
  const index_t n = out_edges.rows;
  const int k = static_cast<int>(sources.size());
  MsBfsResult out;
  out.levels.assign(k, std::vector<index_t>(n, -1));
  if (k == 0) return out;
  if (k > 64) {
    throw std::invalid_argument("ms_bfs: at most 64 sources per batch");
  }

  std::vector<std::uint64_t> seen(n, 0);   // bit s: visited by source s
  std::vector<std::uint64_t> visit(n, 0);  // current frontier membership
  std::vector<std::uint64_t> next(n, 0);
  std::vector<index_t> frontier;  // vertices with visit != 0
  for (int s = 0; s < k; ++s) {
    const index_t src = sources[s];
    seen[src] |= std::uint64_t{1} << s;
    if (visit[src] == 0) frontier.push_back(src);
    visit[src] |= std::uint64_t{1} << s;
    out.levels[s][src] = 0;
  }

  for (index_t level = 1; !frontier.empty(); ++level) {
    ++out.rounds;
    // Expand: every frontier vertex broadcasts its source set to its
    // out-neighbors (one edge scan shared by all k traversals).
    parallel_for(
        static_cast<index_t>(frontier.size()),
        [&](index_t fi) {
          const index_t u = frontier[fi];
          const std::uint64_t w = visit[u];
          for (offset_t i = out_edges.row_ptr[u];
               i < out_edges.row_ptr[u + 1]; ++i) {
            const index_t v = out_edges.col_idx[i];
            // Only sources that have not seen v yet matter; pre-filtering
            // avoids most atomics on converged vertices.
            const std::uint64_t fresh = w & ~atomic_load(&seen[v]);
            if (fresh != 0) atomic_or(&next[v], fresh);
          }
        },
        pool, /*chunk=*/32);

    // Fold: commit newly discovered (vertex, source) pairs.
    frontier.clear();
    for (index_t v = 0; v < n; ++v) {
      const std::uint64_t fresh = next[v] & ~seen[v];
      next[v] = 0;
      if (fresh == 0) continue;
      seen[v] |= fresh;
      visit[v] = fresh;
      frontier.push_back(v);
      std::uint64_t bits = fresh;
      while (bits != 0) {
        const int s = std::countr_zero(bits);
        bits &= bits - 1;
        out.levels[s][v] = level;
      }
    }
  }
  return out;
}

/// Tiled multi-source BFS over a prebuilt tiled transpose: `ta` must be
/// the tiled form of transpose(out_edges) with nonzero (typically unit)
/// values, and square — the serving layer keeps exactly this structure
/// resident so repeated BFS batches skip the transpose + conversion cost.
/// Each level is one block SpMSpM — y = Aᵀx expands every source's
/// frontier along out-edges in a single matrix pass, and the per-slot
/// active words of the frontier block are exactly the 64-bit source sets
/// of the bit-parallel formulation. Levels and rounds match ms_bfs
/// exactly. At most 64 sources.
template <typename T>
MsBfsResult ms_bfs_tiled_on(const TileMatrix<T>& ta,
                            const std::vector<index_t>& sources,
                            ThreadPool* pool = nullptr) {
  if (ta.rows != ta.cols) {
    throw std::invalid_argument("ms_bfs_tiled_on: matrix must be square");
  }
  const index_t n = ta.cols;
  const auto k = static_cast<index_t>(sources.size());
  MsBfsResult out;
  out.levels.assign(static_cast<std::size_t>(k),
                    std::vector<index_t>(static_cast<std::size_t>(n), -1));
  if (k == 0) return out;
  if (k > TileVectorBlock<T>::kMaxLanes) {
    throw std::invalid_argument(
        "ms_bfs_tiled_on: at most 64 sources per batch");
  }

  std::vector<std::uint64_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<SparseVec<T>> x(static_cast<std::size_t>(k), SparseVec<T>(n));
  for (index_t s = 0; s < k; ++s) {
    const index_t src = sources[static_cast<std::size_t>(s)];
    seen[static_cast<std::size_t>(src)] |= std::uint64_t{1} << s;
    out.levels[static_cast<std::size_t>(s)][static_cast<std::size_t>(src)] = 0;
    x[static_cast<std::size_t>(s)].push(src, T{1});
  }

  SpmspmWorkspace<T> ws;
  bool any = true;
  for (index_t level = 1; any; ++level) {
    ++out.rounds;
    const TileVectorBlock<T> xb =
        TileVectorBlock<T>::from_sparse(x, ta.nt, pool);
    std::vector<SparseVec<T>> ys = tile_spmspm(ta, xb, ws, pool);
    // Fold per lane: lane s owns bit s of every seen word and its own
    // levels row, so lanes only contend on the atomic word OR.
    parallel_for(
        k,
        [&](index_t s) {
          const auto si = static_cast<std::size_t>(s);
          const std::uint64_t bit = std::uint64_t{1} << s;
          SparseVec<T> next(n);
          for (index_t v : ys[si].idx) {
            if ((atomic_load(&seen[static_cast<std::size_t>(v)]) & bit) != 0) {
              continue;
            }
            atomic_or(&seen[static_cast<std::size_t>(v)], bit);
            out.levels[si][static_cast<std::size_t>(v)] = level;
            next.push(v, T{1});
          }
          x[si] = std::move(next);
        },
        pool, /*chunk=*/1);
    any = false;
    for (index_t s = 0; s < k; ++s) {
      any = any || x[static_cast<std::size_t>(s)].nnz() > 0;
    }
  }
  return out;
}

/// Builds the tiled transpose pattern (the engine expands j -> i for
/// A[i][j] != 0, so reaching out-neighbors needs A = transpose(out_edges);
/// values become unit weights — the BFS only cares about the pattern) and
/// runs ms_bfs_tiled_on over it. One-shot convenience; callers with a
/// resident matrix use ms_bfs_tiled_on directly.
template <typename T>
MsBfsResult ms_bfs_tiled(const Csr<T>& out_edges,
                         const std::vector<index_t>& sources,
                         SpmspvConfig cfg = {}, ThreadPool* pool = nullptr) {
  Csr<T> at = out_edges.transpose();
  for (auto& v : at.vals) v = T{1};
  const TileMatrix<T> ta =
      TileMatrix<T>::from_csr(at, cfg.nt, cfg.extract_threshold);
  return ms_bfs_tiled_on(ta, sources, pool);
}

}  // namespace tilespmspv
