// Gustavson row-row SpGEMM (Gustavson 1978): C = A · B with C built row
// by row through a sparse accumulator. This is the substrate for the
// paper's intro observation that computing SpMSpV by "just calling an
// SpGEMM" is inefficient — "mostly needs to run the Gustavson's row-row
// method, and encounters very bad data locality since each non-empty row
// of the multiplier has only one element" — which spmspv_via_spgemm
// below makes measurable.
#pragma once

#include <mutex>
#include <vector>

#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// C = A * B over CSR, parallel over rows of A. Each worker chunk keeps
/// its own dense SPA (values + touched list), sized by B's column count.
template <typename T>
Csr<T> spgemm_gustavson(const Csr<T>& a, const Csr<T>& b,
                        ThreadPool* pool = nullptr) {
  assert(a.cols == b.rows);
  const index_t rows = a.rows;
  const index_t cols = b.cols;

  // Per-row outputs gathered first (so the final CSR assembly is one
  // deterministic pass independent of chunk scheduling).
  std::vector<std::vector<std::pair<index_t, T>>> row_out(rows);

  parallel_for_ranges(
      rows,
      [&](index_t begin, index_t end) {
        std::vector<T> spa(cols, T{});
        std::vector<index_t> touched;
        for (index_t i = begin; i < end; ++i) {
          touched.clear();
          for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
            const index_t k = a.col_idx[ka];
            const T av = a.vals[ka];
            for (offset_t kb = b.row_ptr[k]; kb < b.row_ptr[k + 1]; ++kb) {
              const index_t j = b.col_idx[kb];
              if (spa[j] == T{}) touched.push_back(j);
              spa[j] += av * b.vals[kb];
            }
          }
          std::sort(touched.begin(), touched.end());
          auto& out = row_out[i];
          out.reserve(touched.size());
          for (index_t j : touched) {
            // Exact cancellations are kept as explicit zeros would be by
            // most SpGEMM libraries only optionally; drop them here so
            // the result is a clean sparse matrix.
            if (spa[j] != T{}) out.emplace_back(j, spa[j]);
            spa[j] = T{};
          }
        }
      },
      pool, /*chunk=*/16);

  Csr<T> c(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    c.row_ptr[i + 1] =
        c.row_ptr[i] + static_cast<offset_t>(row_out[i].size());
  }
  c.col_idx.resize(c.row_ptr[rows]);
  c.vals.resize(c.row_ptr[rows]);
  for (index_t i = 0; i < rows; ++i) {
    offset_t pos = c.row_ptr[i];
    for (const auto& [j, v] : row_out[i]) {
      c.col_idx[pos] = j;
      c.vals[pos] = v;
      ++pos;
    }
  }
  return c;
}

/// Computes y = A x by calling SpGEMM with x reshaped as an n×1 sparse
/// matrix — the paper's strawman. The multiplier has one element per
/// non-empty row, so Gustavson degenerates to a gather per active column
/// with all of SpGEMM's assembly overhead on top.
template <typename T>
SparseVec<T> spmspv_via_spgemm(const Csr<T>& a, const SparseVec<T>& x,
                               ThreadPool* pool = nullptr) {
  // Reshape x into B (a.cols × 1).
  Csr<T> b(a.cols, 1);
  for (std::size_t k = 0; k < x.idx.size(); ++k) {
    b.row_ptr[x.idx[k] + 1] = 1;
  }
  for (index_t r = 0; r < a.cols; ++r) {
    b.row_ptr[r + 1] += b.row_ptr[r];
  }
  b.col_idx.assign(x.idx.size(), 0);
  b.vals = x.vals;

  const Csr<T> c = spgemm_gustavson(a, b, pool);
  SparseVec<T> y(a.rows);
  for (index_t r = 0; r < c.rows; ++r) {
    for (offset_t i = c.row_ptr[r]; i < c.row_ptr[r + 1]; ++i) {
      y.push(r, c.vals[i]);
    }
  }
  return y;
}

}  // namespace tilespmspv
