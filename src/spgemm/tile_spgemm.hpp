// Tiled SpGEMM — a compact reproduction of the TileSpGEMM approach (Niu
// et al., PPoPP'22) whose storage format the paper's TileSpMSpV extends:
// C = A · B computed as a Gustavson product over the *tile grid*. For
// each tile row of A, the non-empty tiles A(tr,k) are matched against the
// tiles B(k,tc) of the corresponding tile rows of B; each tile-pair
// product accumulates into a dense nt×nt block keyed by tc (the tile-level
// sparse accumulator), and finished blocks are compacted into CSR rows.
//
// Working a tile at a time gives the same locality argument as the
// SpMSpV kernel: the B tile payload is reused across every row of the A
// tile while it is cache-resident.
#pragma once

#include <vector>

#include "formats/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv {

namespace detail {

/// Dense-block accumulate of one tile pair: acc += A_tile * B_tile, where
/// both payloads are tile-local CSR and acc is nt*nt row-major.
template <typename T>
void tile_pair_product(const TileMatrix<T>& a, offset_t ta,
                       const TileMatrix<T>& b, offset_t tb, T* acc) {
  const index_t nt = a.nt;
  const std::uint16_t* pa = &a.intra_row_ptr[ta * (nt + 1)];
  const offset_t base_a = a.tile_nnz_ptr[ta];
  const std::uint16_t* pb = &b.intra_row_ptr[tb * (nt + 1)];
  const offset_t base_b = b.tile_nnz_ptr[tb];
  for (index_t lr = 0; lr < nt; ++lr) {
    T* acc_row = acc + static_cast<std::size_t>(lr) * nt;
    for (offset_t ia = base_a + pa[lr]; ia < base_a + pa[lr + 1]; ++ia) {
      const index_t k = a.local_col[ia];  // column of A = row of B
      const T av = a.vals[ia];
      for (offset_t ib = base_b + pb[k]; ib < base_b + pb[k + 1]; ++ib) {
        acc_row[b.local_col[ib]] += av * b.vals[ib];
      }
    }
  }
}

}  // namespace detail

/// C = A * B with both operands in tiled form (same nt, extraction
/// disabled — callers tile with threshold 0; an extracted part would need
/// the scalar Gustavson fallback).
template <typename T>
Csr<T> tile_spgemm(const TileMatrix<T>& a, const TileMatrix<T>& b,
                   ThreadPool* pool = nullptr) {
  assert(a.nt == b.nt);
  assert(a.cols == b.rows);
  assert(a.extracted.nnz() == 0 && b.extracted.nnz() == 0);
  const index_t nt = a.nt;
  const index_t c_rows = a.rows;
  const index_t c_tile_cols = b.tile_cols;

  // Per-row outputs, assembled deterministically at the end.
  std::vector<std::vector<std::pair<index_t, T>>> row_out(c_rows);

  parallel_for(
      a.tile_rows,
      [&](index_t tr) {
        // Tile-level SPA: dense block per active output tile column.
        std::vector<index_t> slot_of(c_tile_cols, kEmptyTile);
        std::vector<index_t> active;
        std::vector<std::vector<T>> blocks;
        for (offset_t ta = a.tile_row_ptr[tr]; ta < a.tile_row_ptr[tr + 1];
             ++ta) {
          const index_t k = a.tile_col_id[ta];  // tile row of B
          if (k >= b.tile_rows) continue;
          for (offset_t tb = b.tile_row_ptr[k]; tb < b.tile_row_ptr[k + 1];
               ++tb) {
            const index_t tc = b.tile_col_id[tb];
            index_t slot = slot_of[tc];
            if (slot == kEmptyTile) {
              slot = static_cast<index_t>(active.size());
              slot_of[tc] = slot;
              active.push_back(tc);
              blocks.emplace_back(static_cast<std::size_t>(nt) * nt, T{});
            }
            detail::tile_pair_product(a, ta, b, tb, blocks[slot].data());
          }
        }
        // Compact: emit rows in ascending column order.
        std::sort(active.begin(), active.end());
        const index_t r_begin = tr * nt;
        const index_t r_end = std::min<index_t>(r_begin + nt, c_rows);
        for (index_t r = r_begin; r < r_end; ++r) {
          auto& out = row_out[r];
          const index_t lr = r - r_begin;
          for (index_t tc : active) {
            const T* block =
                blocks[slot_of[tc]].data() + static_cast<std::size_t>(lr) * nt;
            const index_t c_base = tc * nt;
            for (index_t lc = 0; lc < nt && c_base + lc < b.cols; ++lc) {
              if (block[lc] != T{}) out.emplace_back(c_base + lc, block[lc]);
            }
          }
        }
        for (index_t tc : active) slot_of[tc] = kEmptyTile;
      },
      pool, /*chunk=*/2);

  Csr<T> c(c_rows, b.cols);
  for (index_t r = 0; r < c_rows; ++r) {
    c.row_ptr[r + 1] = c.row_ptr[r] + static_cast<offset_t>(row_out[r].size());
  }
  c.col_idx.resize(c.row_ptr[c_rows]);
  c.vals.resize(c.row_ptr[c_rows]);
  for (index_t r = 0; r < c_rows; ++r) {
    offset_t pos = c.row_ptr[r];
    for (const auto& [j, v] : row_out[r]) {
      c.col_idx[pos] = j;
      c.vals[pos] = v;
      ++pos;
    }
  }
  return c;
}

/// Convenience overload tiling CSR inputs (extraction off, as required).
template <typename T>
Csr<T> tile_spgemm(const Csr<T>& a, const Csr<T>& b, index_t nt = 16,
                   ThreadPool* pool = nullptr) {
  const TileMatrix<T> ta = TileMatrix<T>::from_csr(a, nt, 0);
  const TileMatrix<T> tb = TileMatrix<T>::from_csr(b, nt, 0);
  return tile_spgemm(ta, tb, pool);
}

}  // namespace tilespmspv
