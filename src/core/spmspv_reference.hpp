// Serial reference SpMSpV implementations — the paper's Algorithm 1
// (row-wise / matrix-driven) and Algorithm 2 (column-wise / vector-driven).
// These are the ground truth every optimized kernel is validated against.
#pragma once

#include <vector>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Algorithm 1: for each row, dot-product against x (x densified once).
template <typename T>
SparseVec<T> spmspv_rowwise_reference(const Csr<T>& a, const SparseVec<T>& x) {
  const std::vector<T> xd = x.to_dense();
  SparseVec<T> y(a.rows);
  for (index_t r = 0; r < a.rows; ++r) {
    T sum{};
    bool touched = false;
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      const T xv = xd[a.col_idx[i]];
      if (xv != T{}) {
        sum += a.vals[i] * xv;
        touched = true;
      }
    }
    if (touched && sum != T{}) y.push(r, sum);
  }
  return y;
}

/// Algorithm 2: for each nonzero x_j, scale column a_{*j} and merge into y.
template <typename T>
SparseVec<T> spmspv_colwise_reference(const Csc<T>& a, const SparseVec<T>& x) {
  std::vector<T> yd(a.rows, T{});
  std::vector<bool> hit(a.rows, false);
  for (std::size_t k = 0; k < x.idx.size(); ++k) {
    const index_t j = x.idx[k];
    const T xv = x.vals[k];
    for (offset_t i = a.col_ptr[j]; i < a.col_ptr[j + 1]; ++i) {
      yd[a.row_idx[i]] += a.vals[i] * xv;
      hit[a.row_idx[i]] = true;
    }
  }
  SparseVec<T> y(a.rows);
  for (index_t r = 0; r < a.rows; ++r) {
    if (hit[r] && yd[r] != T{}) y.push(r, yd[r]);
  }
  return y;
}

}  // namespace tilespmspv
