// Public entry point for repeated SpMSpV with one matrix: preprocess once
// (tiling + very-sparse extraction, in both orientations), then multiply
// against many sparse vectors with automatic kernel selection. This is the
// API the examples and the BFS-style applications use.
//
// The paper provides two forms of the kernel (§3.2.3) — matrix-driven
// CSR-SpMSpV and vector-driven CSC-SpMSpV — "automatically selected"
// (§1, §3.1) by the sparsity of the input vector. The CSR form touches
// every tile row's metadata but streams payloads contiguously, winning for
// denser vectors; the CSC form's work is proportional to the active
// columns only, winning when x is very sparse. The crossover threshold
// mirrors the 0.01 sparsity constant of the BFS selector.
#pragma once

#include <utility>

#include "baselines/tile_spmv.hpp"
#include "core/tile_spmspv.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Which kernel a multiply should use.
enum class SpmspvKernel {
  kAuto,      // select by vector sparsity (paper behaviour)
  kCsr,       // matrix-driven (paper Alg. 4)
  kCsc,       // vector-driven (paper §3.2.3 CSC-SpMSpV)
  kDenseSpmv, // densify x and run tiled SpMV (Li et al. [31] adaptive tier)
};

/// Preprocessing / execution knobs (paper defaults).
struct SpmspvConfig {
  /// Tile size; 16 lets one byte hold both 4-bit local indices (§3.2.1).
  index_t nt = 16;
  /// Tiles with at most this many nonzeros are extracted to COO ("a couple
  /// of nonzeros"; 0 disables extraction).
  index_t extract_threshold = 2;
  /// Kernel choice; kAuto switches on vector sparsity.
  SpmspvKernel kernel = SpmspvKernel::kAuto;
  /// Vector sparsity below which kAuto picks the CSC form (the same 0.01
  /// constant the BFS selector uses).
  double csc_sparsity_threshold = 0.01;
  /// Vector sparsity at or above which kAuto densifies x and runs the
  /// tiled SpMV instead — the adaptive SpMV/SpMSpV selection of Li et
  /// al. (TPDS'21), which the paper cites as the related strategy: once x
  /// is nearly dense, per-element sparsity bookkeeping stops paying.
  double spmv_density_threshold = 0.25;
};

/// Owns the tiled matrix (both orientations) and the reusable multiply
/// workspace.
template <typename T = value_t>
class SpmspvOperator {
 public:
  SpmspvOperator(const Csr<T>& a, SpmspvConfig cfg = {},
                 ThreadPool* pool = nullptr)
      : cfg_(cfg),
        n_(a.cols),
        tiled_(TileMatrix<T>::from_csr(a, cfg.nt, cfg.extract_threshold)),
        tiled_t_(TileMatrix<T>::from_csr(a.transpose(), cfg.nt,
                                         cfg.extract_threshold)),
        pool_(pool) {}

  /// Adopts pre-built tiled forms (e.g. mmapped from a v2 tile file — the
  /// zero-copy serving path). `tiled_t` must be the tiling of Aᵀ with the
  /// same nt; cfg.nt / cfg.extract_threshold are ignored (baked in at
  /// conversion). Without a transpose part the CSC kernel is unavailable,
  /// so kAuto degrades to the CSR form for very sparse vectors.
  SpmspvOperator(TileMatrix<T> tiled, TileMatrix<T> tiled_t,
                 SpmspvConfig cfg = {}, ThreadPool* pool = nullptr)
      : cfg_(cfg),
        n_(tiled.cols),
        tiled_(std::move(tiled)),
        tiled_t_(std::move(tiled_t)),
        pool_(pool) {
    cfg_.nt = tiled_.nt;
    has_transpose_ = tiled_t_.rows == tiled_.cols &&
                     tiled_t_.cols == tiled_.rows && tiled_t_.nt == tiled_.nt;
  }

  /// y = A x. The sparse input is tiled on the fly (O(nnz(x) + n/nt)).
  SparseVec<T> multiply(const SparseVec<T>& x) {
    const TileVector<T> xt = TileVector<T>::from_sparse(x, cfg_.nt);
    return multiply(xt);
  }

  /// y = A x when the caller already holds x in tiled form (e.g. iterative
  /// algorithms that keep vectors tiled across steps).
  SparseVec<T> multiply(const TileVector<T>& x) {
    switch (select(x)) {
      case SpmspvKernel::kCsc:
        return tile_spmspv_csc(tiled_t_, x, ws_, pool_);
      case SpmspvKernel::kDenseSpmv: {
        // Densify and run the tiled SpMV: every non-empty matrix tile is
        // computed, with no vector-tile skipping.
        std::vector<T> xd(n_, T{});
        for (index_t t = 0; t < x.num_tiles(); ++t) {
          const index_t slot = x.x_ptr[t];
          if (slot == kEmptyTile) continue;
          const index_t base = t * x.nt;
          for (index_t j = 0; j < x.nt && base + j < n_; ++j) {
            xd[base + j] = x.x_tile[slot * x.nt + j];
          }
        }
        std::vector<T> yd;
        return tile_spmv(tiled_, xd, yd, pool_);
      }
      default:
        return tile_spmspv(tiled_, x, ws_, pool_);
    }
  }

  /// y<mask> = A x with a structural output mask (GraphBLAS fused form):
  /// only positions where mask_dense[r] != complement are emitted. Runs
  /// the CSR-form kernel (the mask applies at the gather).
  SparseVec<T> multiply_masked(const TileVector<T>& x,
                               const std::vector<bool>& mask_dense,
                               bool complement = false) {
    return tile_spmspv_masked(tiled_, x, mask_dense, complement, ws_, pool_);
  }

  SparseVec<T> multiply_masked(const SparseVec<T>& x,
                               const std::vector<bool>& mask_dense,
                               bool complement = false) {
    const TileVector<T> xt = TileVector<T>::from_sparse(x, cfg_.nt);
    return multiply_masked(xt, mask_dense, complement);
  }

  /// The kernel kAuto would pick for this input (exposed for tests and for
  /// the benchmark harnesses' reporting).
  SpmspvKernel select(const TileVector<T>& x) const {
    if (cfg_.kernel != SpmspvKernel::kAuto) return cfg_.kernel;
    const double sparsity = x.sparsity();
    if (sparsity < cfg_.csc_sparsity_threshold) {
      return has_transpose_ ? SpmspvKernel::kCsc : SpmspvKernel::kCsr;
    }
    if (sparsity >= cfg_.spmv_density_threshold) {
      return SpmspvKernel::kDenseSpmv;
    }
    return SpmspvKernel::kCsr;
  }

  const TileMatrix<T>& matrix() const { return tiled_; }
  const TileMatrix<T>& matrix_transposed() const { return tiled_t_; }

 private:
  SpmspvConfig cfg_;
  index_t n_;
  TileMatrix<T> tiled_;    // A, CSR-of-tiles
  TileMatrix<T> tiled_t_;  // Aᵀ, CSR-of-tiles == CSC-of-tiles view of A
  bool has_transpose_ = true;  // false on mapped files without a Aᵀ part
  SpmspvWorkspace<T> ws_;
  ThreadPool* pool_;
};

}  // namespace tilespmspv
