// Analytic work model for the SpMSpV algorithms: walks the tiled metadata
// (never the payloads) and predicts how much work each kernel will do for
// a given input vector — tiles scanned, tiles computed, multiply-adds,
// side-matrix operations. The reproduction's performance claims are
// work-driven (see EXPERIMENTS.md), and this model makes them checkable:
// measured runtimes should rank like modeled work, and the tests verify
// the model against brute-force counting.
#pragma once

#include "formats/csr.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct SpmspvWork {
  offset_t tiles_scanned = 0;   // tile metadata entries visited
  offset_t tiles_computed = 0;  // tiles whose payload is multiplied
  offset_t payload_macs = 0;    // multiply-adds inside computed tiles
  offset_t side_macs = 0;       // multiply-adds in the extracted part
  offset_t gather_slots = 0;    // output tile-slot scans

  offset_t total_ops() const {
    return tiles_scanned + payload_macs + side_macs + gather_slots;
  }
};

/// Work of the CSR-form kernel (paper Alg. 4): every tile's metadata is
/// scanned; only tiles whose vector tile is non-empty compute.
template <typename T>
SpmspvWork work_tile_spmspv_csr(const TileMatrix<T>& a,
                                const TileVector<T>& x) {
  SpmspvWork w;
  w.tiles_scanned = a.num_tiles();
  for (index_t t = 0; t < a.num_tiles(); ++t) {
    if (x.x_ptr[a.tile_col_id[t]] != kEmptyTile) {
      ++w.tiles_computed;
      w.payload_macs += a.tile_nnz_ptr[t + 1] - a.tile_nnz_ptr[t];
    }
  }
  for (index_t s = 0; s < x.num_tiles(); ++s) {
    if (x.x_ptr[s] == kEmptyTile) continue;
    const index_t j_begin = s * x.nt;
    const index_t j_end = std::min<index_t>(j_begin + x.nt, a.cols);
    w.side_macs += a.side_col_ptr[j_end] - a.side_col_ptr[j_begin];
  }
  w.gather_slots = a.tile_rows;
  return w;
}

/// Work of the CSC-form kernel (§3.2.3): only the tile columns selected
/// by x are touched at all. `at` is the tiled transpose, as in
/// tile_spmspv_csc.
template <typename T>
SpmspvWork work_tile_spmspv_csc(const TileMatrix<T>& at,
                                const TileVector<T>& x) {
  SpmspvWork w;
  for (index_t s = 0; s < x.num_tiles(); ++s) {
    if (x.x_ptr[s] == kEmptyTile || s >= at.tile_rows) continue;
    for (offset_t t = at.tile_row_ptr[s]; t < at.tile_row_ptr[s + 1]; ++t) {
      ++w.tiles_scanned;
      ++w.tiles_computed;
      w.payload_macs += at.tile_nnz_ptr[t + 1] - at.tile_nnz_ptr[t];
    }
    const index_t j_begin = s * x.nt;
    const index_t j_end = std::min<index_t>(j_begin + x.nt, at.rows);
    w.side_macs += at.side_row_ptr[j_end] - at.side_row_ptr[j_begin];
  }
  w.gather_slots = at.tile_cols;
  return w;
}

/// Work of a dense-vector SpMV over the same matrix: every stored nonzero
/// is multiplied (the TileSpMV / cuSPARSE cost).
template <typename T>
SpmspvWork work_spmv(const TileMatrix<T>& a) {
  SpmspvWork w;
  w.tiles_scanned = a.num_tiles();
  w.tiles_computed = a.num_tiles();
  w.payload_macs = a.tiled_nnz();
  w.side_macs = a.extracted.nnz();
  w.gather_slots = a.tile_rows;
  return w;
}

/// Main-memory traffic (bytes) implied by a SpmspvWork prediction, from
/// the tiled format's storage layout: a scanned tile reads its metadata
/// entry (4-byte tile col id + 8-byte nnz pointer), a computed payload
/// nonzero reads an 8-byte value plus its 1-byte local column, a side-COO
/// multiply-add reads value + row + column (8 + 4 + 4), and every gather
/// slot touches one 8-byte output cell. Vector traffic (read of x, write
/// of y) rides on the same slots and is second-order for the sparse
/// regimes the model targets, so it is folded into the slot constant.
/// The bench-report roofline attribution divides this by the calibrated
/// memory bandwidth (obs/bench_report.hpp) to lower-bound the run time.
inline double spmspv_traffic_bytes(const SpmspvWork& w) {
  return 12.0 * static_cast<double>(w.tiles_scanned) +
         9.0 * static_cast<double>(w.payload_macs) +
         16.0 * static_cast<double>(w.side_macs) +
         8.0 * static_cast<double>(w.gather_slots);
}

/// Useful floating-point operations of the same prediction (each
/// multiply-add is two FLOPs, in the tiles and the side pass alike).
inline double spmspv_flops(const SpmspvWork& w) {
  return 2.0 * static_cast<double>(w.payload_macs + w.side_macs);
}

/// Work of a column-driven element-wise SpMSpV (CombBLAS-bucket class):
/// exactly the nonzeros of the active columns.
template <typename T>
SpmspvWork work_column_driven(const Csr<T>& a,
                              const std::vector<offset_t>& col_nnz,
                              const std::vector<index_t>& x_idx) {
  SpmspvWork w;
  for (index_t j : x_idx) w.payload_macs += col_nnz[j];
  (void)a;
  return w;
}

}  // namespace tilespmspv
