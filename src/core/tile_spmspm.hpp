// Block-of-k SpMSpM: Y = A X for a TileVectorBlock of k <= 64 sparse
// vectors sharing one traversal of the tiled matrix. The paper frames
// SpMSpV as the k = 1 corner of SpGEMM (§1); this engine is the register/
// cache-blocked middle ground: tile metadata is read once per block, each
// nonzero a.vals[z] is broadcast and FMA'd across the k lanes of a
// lane-interleaved accumulator (simd::axpy_lanes), and the per-slot active
// lane bitmasks of the block replace k separate x_ptr probes per tile.
//
// Structure mirrors tile_spmspv's three phases:
//   1. tiled part — one task per work-balanced tile-row chunk; each chunk
//      owns an nt×k accumulator block (per pool slot, hoisted in the
//      workspace) written to the rows×k dense output once per tile row,
//      with the row's union lane mask stored in row_mask;
//   2. extracted side COO — block-wide, parallel over nnz-weighted chunks
//      of the active tile slots, atomically merging into the same output;
//   3. gather — parallel over lanes; each lane counts its flagged tile
//      rows first (prefix sizing, no geometric reallocation), then emits
//      its nonzeros and restores the all-zero workspace invariant.
//
// Tiles where only a few of the k lanes are active take a per-entry
// bit-iteration path instead of the full-width broadcast, so a block of
// nearly disjoint vectors does not pay k-wide FMAs for one useful lane.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "formats/sparse_vector.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_chunks.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector_block.hpp"
#include "util/bitkernels.hpp"
#include "util/bitops.hpp"
#include "util/simd.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Reusable buffers for the block engine, following the SpmspvWorkspace
/// discipline: steady-state multiplies allocate nothing, and cost stays
/// proportional to the touched rows. Invariants between calls: y_block and
/// row_mask are all-zero (the gather restores them); acc, active and
/// side_chunks hold garbage.
template <typename T = value_t>
struct SpmspmWorkspace {
  std::vector<T> y_block;               // rows * k dense output, all-zero
  std::vector<std::uint64_t> row_mask;  // per tile row: union lane mask
  std::vector<T> acc;                   // pool slots * nt * k accumulators
  std::vector<index_t> active;          // hoisted active-slot list (phase 2)
  std::vector<index_t> side_chunks;     // hoisted nnz-weighted chunk bounds

  void ensure(index_t rows, index_t tile_rows, index_t k, index_t nt,
              int pool_slots) {
    const std::size_t need_y =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(k);
    if (y_block.size() < need_y) y_block.resize(need_y, T{});
    if (row_mask.size() < static_cast<std::size_t>(tile_rows)) {
      row_mask.resize(static_cast<std::size_t>(tile_rows), 0);
    }
    const std::size_t need_acc = static_cast<std::size_t>(pool_slots) *
                                 static_cast<std::size_t>(nt) *
                                 static_cast<std::size_t>(k);
    if (acc.size() < need_acc) acc.resize(need_acc);
  }
};

namespace detail {

/// One tile row × one 4-lane group, register-resident accumulator panel.
template <typename T>
inline void panel_row(const T* vals, const std::uint8_t* cols, int n,
                      index_t k, int w, const T* x,
                      T* acc) {  // lint:hot-path
  if constexpr (std::is_same_v<T, double>) {
    simd::lane_panel_update(vals, cols, n, static_cast<int>(k), w, x, acc);
  } else {
    for (int i = 0; i < n; ++i) {
      const T a = vals[i];
      const T* xr = x + static_cast<std::size_t>(cols[i]) * k;
      for (int v = 0; v < w; ++v) acc[v] += a * xr[v];
    }
  }
}

/// Panel accumulation of one tile into the nt×k block: rows outer, active
/// 4-lane groups inner. Each group's accumulator panel stays in a register
/// across the row's entries (one load/store per row × group instead of per
/// nonzero), and groups with no active lane are skipped entirely — tiles
/// where only part of the block is live neither read nor write the dead
/// lanes' payload at nibble granularity. `runs` may be null (no run list).
template <typename T>
inline void block_tile_accumulate(const T* vals, const std::uint8_t* cols,
                                  const std::uint16_t* rp,
                                  const std::uint8_t* runs, int nruns,
                                  index_t nt, index_t k, std::uint64_t word,
                                  const T* xt, T* acc) {  // lint:hot-path
  const auto row = [&](int lr, int begin, int n) {
    if (n == 0) return;
    T* arow = acc + static_cast<std::size_t>(lr) * k;
    index_t g = 0;
    if constexpr (std::is_same_v<T, double>) {
      // Nearly full 16-lane groups take the wide panel (one entry pass
      // covers 16 lanes, four FMA chains); sparser groups drop to 4-lane
      // nibbles so dead lanes are skipped at finer granularity. The wide
      // panel multiplies its few dead lanes against the zeros the block
      // stores for them — same products per active lane either way.
      for (; g + 16 <= k; g += 16) {
        const std::uint64_t m16 = (word >> g) & 0xFFFFu;
        if (m16 == 0) continue;
        if (popcount(m16) >= 12) {
          simd::lane_panel16_update(vals + begin, cols + begin, n,
                                    static_cast<int>(k), xt + g, arow + g);
          continue;
        }
        for (index_t s = g; s < g + 16; s += 4) {
          if (((word >> s) & 0xFu) == 0) continue;
          panel_row(vals + begin, cols + begin, n, k, 4, xt + s, arow + s);
        }
      }
    }
    for (; g < k; g += 4) {
      const int w = static_cast<int>(k - g < 4 ? k - g : 4);
      if (((word >> g) & ((std::uint64_t{1} << w) - 1)) == 0) continue;
      panel_row(vals + begin, cols + begin, n, k, w, xt + g, arow + g);
    }
  };
  if (runs != nullptr) {
    int pos = 0;
    for (int ri = 0; ri < nruns; ++ri) {
      const std::size_t rb = static_cast<std::size_t>(ri) * 3;
      row(runs[rb], pos, runs[rb + 1] + 1);
      pos += runs[rb + 1] + 1;
    }
    return;
  }
  for (index_t lr = 0; lr < nt; ++lr) {
    row(static_cast<int>(lr), rp[lr], rp[lr + 1] - rp[lr]);
  }
}

/// Sparse-lane accumulation: iterate the tile's entries once and update
/// only the lanes set in `word`. Same per-lane entry order as the dense
/// path (entries outer), so the two paths sum identically per lane.
template <typename T>
inline void block_tile_accumulate_lanes(const T* vals, const std::uint8_t* cols,
                                        const std::uint16_t* rp,
                                        const std::uint8_t* runs, int nruns,
                                        index_t nt, index_t k,
                                        std::uint64_t word, const T* xt,
                                        T* acc) {  // lint:hot-path
  const auto update = [&](int lr, int i) {
    T* arow = acc + static_cast<std::size_t>(lr) * k;
    const T* xrow = xt + static_cast<std::size_t>(cols[i]) * k;
    const T a = vals[i];
    for (std::uint64_t bits = word; bits != 0; bits &= bits - 1) {
      const int v = std::countr_zero(bits);
      arow[v] += a * xrow[v];
    }
  };
  if (runs != nullptr) {
    int pos = 0;
    for (int ri = 0; ri < nruns; ++ri) {
      const std::size_t rb = static_cast<std::size_t>(ri) * 3;
      const int lr = runs[rb];
      const int c = runs[rb + 1] + 1;
      for (int i = pos; i < pos + c; ++i) update(lr, i);
      pos += c;
    }
    return;
  }
  for (index_t lr = 0; lr < nt; ++lr) {
    for (int i = rp[lr]; i < rp[lr + 1]; ++i) {
      update(static_cast<int>(lr), i);
    }
  }
}

}  // namespace detail

/// Y[v] = A * X.lane(v) for every lane of the block. Per lane, the result
/// is numerically equivalent to tile_spmspv (same products, possibly
/// different summation order).
template <typename T>
std::vector<SparseVec<T>> tile_spmspm(const TileMatrix<T>& a,
                                      const TileVectorBlock<T>& x,
                                      SpmspmWorkspace<T>& ws,
                                      ThreadPool* pool = nullptr) {
  const index_t nt = a.nt;
  const index_t k = x.k;
  std::vector<SparseVec<T>> ys(static_cast<std::size_t>(k));
  if (k == 0) return ys;
  assert(x.nt == nt);
  assert(ceil_div(x.n, nt) >= a.tile_cols || x.n == a.cols);
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  ws.ensure(a.rows, a.tile_rows, k, nt, static_cast<int>(p.size()));
  T* yb = ws.y_block.data();
  std::uint64_t* rmask = ws.row_mask.data();

  // Phase 1: tiled part over the conversion-time work-balanced chunks.
  // One x_ptr/active probe per tile serves the whole block; the dense vs
  // sparse lane path is chosen per tile from the active-lane count.
  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "block");
    std::vector<index_t> fallback;
    const std::vector<index_t>* cp = &a.row_chunk_ptr;
    if (cp->size() < 2) {
      fallback = uniform_row_chunks(a.tile_rows, 8);
      cp = &fallback;
    }
    const auto nchunks = static_cast<index_t>(cp->size()) - 1;
    const index_t* chunk_ptr = cp->data();
    const bool have_runs =
        a.run_ptr.size() == static_cast<std::size_t>(a.num_tiles()) + 1;
    parallel_for(
        nchunks,
        [&](index_t c) {
          const int slot = ThreadPool::scratch_slot();
          T* acc = ws.acc.data() + static_cast<std::size_t>(slot) * nt *
                                       static_cast<std::size_t>(k);
          std::uint64_t scanned = 0, computed = 0, macs = 0, lane_macs = 0,
                        shared = 0;
          for (index_t tr = chunk_ptr[c]; tr < chunk_ptr[c + 1]; ++tr) {
            std::uint64_t row_word = 0;
            for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
                 ++t) {
              ++scanned;
              const index_t tile_colid = a.tile_col_id[t];
              const std::uint64_t word = x.active[tile_colid];
              if (word == 0) continue;  // no lane has this vector tile
              ++computed;
              const offset_t base = a.tile_nnz_ptr[t];
              const auto tile_nnz = static_cast<std::uint64_t>(
                  a.tile_nnz_ptr[t + 1] - base);
              const auto lanes = static_cast<index_t>(popcount(word));
              macs += tile_nnz * static_cast<std::uint64_t>(lanes);
              lane_macs += tile_nnz * static_cast<std::uint64_t>(k);
              shared += static_cast<std::uint64_t>(lanes - 1);
              const T* xt = x.x_tile.data() +
                            static_cast<std::size_t>(x.x_ptr[tile_colid]) *
                                nt * static_cast<std::size_t>(k);
              if (row_word == 0) {
                std::fill(acc,
                          acc + static_cast<std::size_t>(nt) *
                                    static_cast<std::size_t>(k),
                          T{});
              }
              row_word |= word;
              const std::uint8_t* runs =
                  have_runs ? a.row_runs.data() + 3 * a.run_ptr[t] : nullptr;
              const int nruns =
                  have_runs
                      ? static_cast<int>(a.run_ptr[t + 1] - a.run_ptr[t])
                      : 0;
              const std::uint16_t* rp = &a.intra_row_ptr[t * (nt + 1)];
              // Panel path skips dead lanes at group granularity (16-wide
              // panels for dense groups, 4-lane nibbles for partial ones),
              // so it stays efficient from full occupancy down to moderate;
              // only near-empty words (less than one lane per 16) fall back
              // to the per-set-bit path, which touches strictly the active
              // lanes.
              if (lanes * 16 >= k) {
                detail::block_tile_accumulate(&a.vals[base],
                                              &a.local_col[base], rp, runs,
                                              nruns, nt, k, word, xt, acc);
              } else {
                detail::block_tile_accumulate_lanes(&a.vals[base],
                                                    &a.local_col[base], rp,
                                                    runs, nruns, nt, k, word,
                                                    xt, acc);
              }
            }
            if (row_word != 0) {
              const index_t r_begin = tr * nt;
              const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
              std::copy(acc,
                        acc + static_cast<std::size_t>(r_end - r_begin) *
                                  static_cast<std::size_t>(k),
                        yb + static_cast<std::size_t>(r_begin) *
                                 static_cast<std::size_t>(k));
              rmask[tr] = row_word;  // tile row owned by this chunk
            }
          }
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesSkippedEmpty,
                           scanned - computed);
          obs::counter_add(obs::Counter::kTilesComputed, computed);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
          obs::counter_add(obs::Counter::kBatchLaneMacs, lane_macs);
          obs::counter_add(obs::Counter::kBatchTilesShared, shared);
        },
        &p, /*chunk=*/1);
  }

  // Phase 2: extracted side part, block-wide. Active tile slots are listed
  // once for the whole block and cut into side-nnz-weighted chunks; each
  // column's contributing lane mask is computed once, then every side
  // entry scatters that mask's lanes atomically (several chunks can hit
  // the same output row).
  if (a.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "block");
    ws.active.resize(static_cast<std::size_t>(x.num_tiles()));
    const index_t nact = bitk::collect_nonzero(x.active.data(), x.num_tiles(),
                                               0, ws.active.data());
    const index_t* active = ws.active.data();
    build_weighted_chunks_into(
        ws.side_chunks, nact, kChunkTargetWork, [&](index_t ai) {
          const index_t j_begin = active[ai] * nt;
          const index_t j_end = std::min<index_t>(j_begin + nt, a.cols);
          return a.side_col_ptr[j_end] - a.side_col_ptr[j_begin];
        });
    const auto nsc = static_cast<index_t>(ws.side_chunks.size()) - 1;
    const index_t* side_chunk = ws.side_chunks.data();
    parallel_for(
        nsc,
        [&](index_t c) {
          std::uint64_t side = 0;
          for (index_t ai = side_chunk[c]; ai < side_chunk[c + 1]; ++ai) {
            const index_t s = active[ai];
            const std::uint64_t word = x.active[s];
            const T* xt = x.x_tile.data() +
                          static_cast<std::size_t>(x.x_ptr[s]) * nt *
                              static_cast<std::size_t>(k);
            for (index_t lj = 0; lj < nt; ++lj) {
              const index_t j = s * nt + lj;
              if (j >= a.cols) break;
              const offset_t e_begin = a.side_col_ptr[j];
              const offset_t e_end = a.side_col_ptr[j + 1];
              if (e_begin == e_end) continue;
              const T* xrow = xt + static_cast<std::size_t>(lj) * k;
              std::uint64_t colmask = 0;
              for (std::uint64_t bits = word; bits != 0; bits &= bits - 1) {
                const int v = std::countr_zero(bits);
                if (xrow[v] != T{}) colmask |= std::uint64_t{1} << v;
              }
              if (colmask == 0) continue;
              side += static_cast<std::uint64_t>(e_end - e_begin) *
                      static_cast<std::uint64_t>(popcount(colmask));
              for (offset_t i = e_begin; i < e_end; ++i) {
                const index_t r = a.side_row_idx[i];
                const T av = a.side_vals[i];
                T* yrow = yb + static_cast<std::size_t>(r) * k;
                for (std::uint64_t bits = colmask; bits != 0;
                     bits &= bits - 1) {
                  const int v = std::countr_zero(bits);
                  atomic_add(&yrow[v], av * xrow[v]);
                }
                atomic_or(&rmask[r / nt], colmask);
              }
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        &p, /*chunk=*/1);
  }

  // Phase 3: per-lane gather, parallel over the k lanes. Each lane sizes
  // its output from its flagged-tile-row count (one bit test per tile
  // row), emits in index order, and clears exactly the y_block cells it
  // read — lanes touch disjoint cells, so no synchronization is needed.
  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "block");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(k) *
                       static_cast<std::uint64_t>(a.tile_rows));
  parallel_for(
      k,
      [&](index_t v) {
        const std::uint64_t bit = std::uint64_t{1} << v;
        index_t flagged = 0;
        for (index_t tr = 0; tr < a.tile_rows; ++tr) {
          flagged += (rmask[tr] & bit) != 0 ? 1 : 0;
        }
        SparseVec<T> y(a.rows);
        y.reserve(static_cast<std::size_t>(flagged) *
                  static_cast<std::size_t>(nt));
        for (index_t tr = 0; tr < a.tile_rows; ++tr) {
          if ((rmask[tr] & bit) == 0) continue;
          const index_t r_begin = tr * nt;
          const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
          for (index_t r = r_begin; r < r_end; ++r) {
            T& cell = yb[static_cast<std::size_t>(r) * k + v];
            if (cell != T{}) y.push(r, cell);
            cell = T{};
          }
        }
        ys[static_cast<std::size_t>(v)] = std::move(y);
      },
      &p, /*chunk=*/1);
  std::fill(rmask, rmask + a.tile_rows, 0);
  return ys;
}

/// Convenience overload owning a transient workspace.
template <typename T>
std::vector<SparseVec<T>> tile_spmspm(const TileMatrix<T>& a,
                                      const TileVectorBlock<T>& x,
                                      ThreadPool* pool = nullptr) {
  SpmspmWorkspace<T> ws;
  return tile_spmspm(a, x, ws, pool);
}

}  // namespace tilespmspv
