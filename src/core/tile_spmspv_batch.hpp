// Batched TileSpMSpV: Y = A X for a block of sparse vectors sharing one
// traversal of the tiled matrix. The paper frames SpMSpV as the k = 1
// corner of SpGEMM (§1); real workloads sit in between — multi-source BFS
// fan-outs, batched inference — and there the tile metadata (tile-row
// scan, x_ptr lookups) can be paid once per tile instead of once per
// vector. Each tile that survives the per-vector x_ptr check multiplies
// against every active vector before the next tile's metadata is touched,
// so payload bytes are reused while resident.
#pragma once

#include <algorithm>
#include <vector>

#include "core/tile_spmspv.hpp"
#include "formats/sparse_vector.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Y[k] = A * X[k] for every k. Results are identical to k independent
/// tile_spmspv calls (same traversal order per vector).
template <typename T>
std::vector<SparseVec<T>> tile_spmspv_batch(
    const TileMatrix<T>& a, const std::vector<TileVector<T>>& xs,
    ThreadPool* pool = nullptr) {
  const index_t nt = a.nt;
  const auto k = static_cast<index_t>(xs.size());
  std::vector<SparseVec<T>> ys(k);
  if (k == 0) return ys;
  for ([[maybe_unused]] const auto& x : xs) {
    assert(x.nt == nt);
    assert(ceil_div(x.n, nt) >= a.tile_cols || x.n == a.cols);
  }

  // Dense accumulators: one rows-sized buffer per vector (the batch is
  // expected to be small — e.g. 64-source BFS waves — so rows*k stays
  // cache-friendly per tile row).
  std::vector<std::vector<T>> yd(k, std::vector<T>(a.rows, T{}));
  std::vector<std::vector<unsigned char>> flags(
      k, std::vector<unsigned char>(a.tile_rows, 0));

  obs::TraceSpan batch_span("spmspv/batch", "spmspv");
  std::vector<index_t> fallback;
  const std::vector<index_t>* cp = &a.row_chunk_ptr;
  if (cp->size() < 2) {
    fallback = uniform_row_chunks(a.tile_rows, 4);
    cp = &fallback;
  }
  const auto nchunks = static_cast<index_t>(cp->size()) - 1;
  const index_t* chunk_ptr = cp->data();
  const bool have_runs =
      a.run_ptr.size() == static_cast<std::size_t>(a.num_tiles()) + 1;
  parallel_for(
      nchunks,
      [&](index_t c) {
        // acc[k][nt] flattened; 256 is the nt cap from TileMatrix. Hoisted
        // to chunk scope so the allocations amortize over the chunk's rows.
        std::vector<T> acc(static_cast<std::size_t>(k) * nt, T{});
        std::vector<unsigned char> any(k, 0);
        T prod[detail::kProdScratch];
        // Batched semantics: each tile's metadata is scanned once for the
        // whole batch; computed/MAC counts are per surviving vector.
        std::uint64_t scanned = 0, computed = 0, macs = 0;
        for (index_t tr = chunk_ptr[c]; tr < chunk_ptr[c + 1]; ++tr) {
          std::fill(any.begin(), any.end(), 0);
          for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
               ++t) {
            ++scanned;
            const index_t tile_colid = a.tile_col_id[t];
            const std::uint16_t* p = &a.intra_row_ptr[t * (nt + 1)];
            const offset_t base = a.tile_nnz_ptr[t];
            const auto tile_nnz = static_cast<std::uint64_t>(
                a.tile_nnz_ptr[t + 1] - a.tile_nnz_ptr[t]);
            for (index_t v = 0; v < k; ++v) {
              const index_t x_offset = xs[v].x_ptr[tile_colid];
              if (x_offset == kEmptyTile) continue;
              ++computed;
              macs += tile_nnz;
              const T* xt =
                  &xs[v].x_tile[static_cast<std::size_t>(x_offset) * nt];
              T* av = &acc[static_cast<std::size_t>(v) * nt];
              if (!any[v]) {
                for (index_t i = 0; i < nt; ++i) av[i] = T{};
                any[v] = 1;
              }
              if (have_runs) {
                detail::intra_tile_accumulate_runs(
                    &a.vals[base], &a.local_col[base],
                    a.row_runs.data() + 3 * a.run_ptr[t],
                    static_cast<int>(a.run_ptr[t + 1] - a.run_ptr[t]),
                    static_cast<int>(tile_nnz), a.tile_strategy[t], xt, av,
                    prod);
              } else {
                detail::intra_tile_accumulate(&a.vals[base],
                                              &a.local_col[base], p, nt, xt,
                                              av, prod);
              }
            }
          }
          const index_t r_begin = tr * nt;
          const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
          for (index_t v = 0; v < k; ++v) {
            if (!any[v]) continue;
            for (index_t r = r_begin; r < r_end; ++r) {
              yd[v][r] = acc[static_cast<std::size_t>(v) * nt + (r - r_begin)];
            }
            flags[v][tr] = 1;
          }
        }
        obs::counter_add(obs::Counter::kTilesScanned, scanned);
        obs::counter_add(obs::Counter::kTilesComputed, computed);
        obs::counter_add(obs::Counter::kPayloadMacs, macs);
      },
      pool, /*chunk=*/1);

  // Extracted side part, column-driven per vector (same as tile_spmspv).
  if (a.extracted.nnz() > 0) {
    parallel_for(
        k,
        [&](index_t v) {
          const TileVector<T>& x = xs[v];
          std::uint64_t side = 0;
          for (index_t s = 0; s < x.num_tiles(); ++s) {
            if (x.x_ptr[s] == kEmptyTile) continue;
            const T* xt =
                &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
            for (index_t lj = 0; lj < nt; ++lj) {
              const index_t j = s * nt + lj;
              if (j >= a.cols) break;
              const T xv = xt[lj];
              if (xv == T{}) continue;
              side += static_cast<std::uint64_t>(a.side_col_ptr[j + 1] -
                                                 a.side_col_ptr[j]);
              for (offset_t i = a.side_col_ptr[j]; i < a.side_col_ptr[j + 1];
                   ++i) {
                const index_t r = a.side_row_idx[i];
                yd[v][r] += a.side_vals[i] * xv;
                flags[v][r / nt] = 1;
              }
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        pool, /*chunk=*/1);
  }

  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(k) *
                       static_cast<std::uint64_t>(a.tile_rows));
  for (index_t v = 0; v < k; ++v) {
    ys[v] = SparseVec<T>(a.rows);
    index_t flagged = 0;
    for (index_t tr = 0; tr < a.tile_rows; ++tr) {
      flagged += flags[v][tr] ? 1 : 0;
    }
    ys[v].reserve(static_cast<std::size_t>(flagged) * nt);
    for (index_t tr = 0; tr < a.tile_rows; ++tr) {
      if (!flags[v][tr]) continue;
      const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
      for (index_t r = tr * nt; r < r_end; ++r) {
        if (yd[v][r] != T{}) ys[v].push(r, yd[v][r]);
      }
    }
  }
  return ys;
}

/// Convenience overload tiling plain sparse vectors first.
template <typename T>
std::vector<SparseVec<T>> tile_spmspv_batch(
    const TileMatrix<T>& a, const std::vector<SparseVec<T>>& xs,
    ThreadPool* pool = nullptr) {
  std::vector<TileVector<T>> tiled;
  tiled.reserve(xs.size());
  for (const auto& x : xs) {
    tiled.push_back(TileVector<T>::from_sparse(x, a.nt));
  }
  return tile_spmspv_batch(a, tiled, pool);
}

}  // namespace tilespmspv
