// Batched TileSpMSpV: Y = A X for a block of sparse vectors sharing one
// traversal of the tiled matrix. This is now a thin front over the
// block-of-k SpMSpM engine (core/tile_spmspm.hpp): vectors are packed into
// TileVectorBlock SoA blocks of up to 64 lanes and each block rides one
// broadcast-FMA traversal. k = 1 delegates to tile_spmspv, preserving its
// exact (bitwise) output; larger batches are numerically equivalent per
// lane with a lane-major summation order.
#pragma once

#include <algorithm>
#include <vector>

#include "core/tile_spmspm.hpp"
#include "core/tile_spmspv.hpp"
#include "formats/sparse_vector.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "tile/tile_vector_block.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Y[v] = A * X[v] for every v. Equivalent to k independent tile_spmspv
/// calls (bitwise for k == 1; same products per lane otherwise).
template <typename T>
std::vector<SparseVec<T>> tile_spmspv_batch(
    const TileMatrix<T>& a, const std::vector<TileVector<T>>& xs,
    ThreadPool* pool = nullptr) {
  const auto k = static_cast<index_t>(xs.size());
  std::vector<SparseVec<T>> ys(static_cast<std::size_t>(k));
  if (k == 0) return ys;
  if (k == 1) {
    ys[0] = tile_spmspv(a, xs[0], pool);
    return ys;
  }
  SpmspmWorkspace<T> ws;
  for (index_t base = 0; base < k; base += TileVectorBlock<T>::kMaxLanes) {
    const index_t kb =
        std::min<index_t>(TileVectorBlock<T>::kMaxLanes, k - base);
    const TileVectorBlock<T> xb = TileVectorBlock<T>::from_tiled(
        xs.data() + static_cast<std::size_t>(base), kb, pool);
    std::vector<SparseVec<T>> yb = tile_spmspm(a, xb, ws, pool);
    for (index_t v = 0; v < kb; ++v) {
      ys[static_cast<std::size_t>(base + v)] =
          std::move(yb[static_cast<std::size_t>(v)]);
    }
  }
  return ys;
}

/// Convenience overload tiling plain sparse vectors first; the independent
/// per-vector conversions run in parallel.
template <typename T>
std::vector<SparseVec<T>> tile_spmspv_batch(
    const TileMatrix<T>& a, const std::vector<SparseVec<T>>& xs,
    ThreadPool* pool = nullptr) {
  const auto k = static_cast<index_t>(xs.size());
  std::vector<TileVector<T>> tiled(static_cast<std::size_t>(k));
  parallel_for(
      k,
      [&](index_t v) {
        tiled[static_cast<std::size_t>(v)] =
            TileVector<T>::from_sparse(xs[static_cast<std::size_t>(v)], a.nt);
      },
      pool, /*chunk=*/1);
  return tile_spmspv_batch(a, tiled, pool);
}

}  // namespace tilespmspv
