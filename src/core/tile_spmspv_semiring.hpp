// Semiring-generic TileSpMSpV. Same data structures and traversal order
// as the optimized numeric kernels (core/tile_spmspv.hpp), but the scalar
// operations come from a semiring parameter, so shortest-path (min-plus),
// reachability (or-and) and reliability (max-times) all run on the tiled
// storage. Kept separate from the numeric path: the specialized kernel
// stays branch-free and benchmark-clean, the generic one favours clarity.
//
// Merging across work units is serialized with a per-output-tile spinlock
// (generic semirings have no atomic fetch-op), which is fine because the
// sparse workloads this path serves have little tile contention.
#pragma once

#include <vector>

#include "core/semiring.hpp"
#include "formats/sparse_vector.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// y = A ⊗ x over semiring S, vector-driven (CSC form). `at` is the tiled
/// transpose of A, exactly as in tile_spmspv_csc. The result contains
/// every output whose accumulated value differs from S::zero().
template <typename S, typename T = typename S::value_type>
SparseVec<T> tile_spmspv_semiring(const TileMatrix<T>& at,
                                  const TileVector<T>& x,
                                  ThreadPool* pool = nullptr) {
  const index_t nt = at.nt;
  const index_t out_n = at.cols;
  const index_t out_tiles = at.tile_cols;

  std::vector<T> yd(out_n, S::zero());
  std::vector<unsigned char> flag(out_tiles, 0);
  // One byte spinlock per output tile (parallel/atomics.hpp).
  std::vector<unsigned char> locks(out_tiles, 0);

  std::vector<index_t> active;
  for (index_t s = 0; s < x.num_tiles(); ++s) {
    if (x.x_ptr[s] != kEmptyTile && s < at.tile_rows &&
        (at.tile_row_ptr[s] < at.tile_row_ptr[s + 1] ||
         !at.extracted.row_idx.empty())) {
      active.push_back(s);
    }
  }

  // The acquire/release pair is intentionally split across two helper
  // lambdas; every caller below releases on each exit path.
  auto lock_tile = [&](index_t t) { spin_lock(&locks[t]); };    // lint:allow(lock-discipline) half of a split pair
  auto unlock_tile = [&](index_t t) { spin_unlock(&locks[t]); };  // lint:allow(lock-discipline) half of a split pair

  parallel_for(
      static_cast<index_t>(active.size()),
      [&](index_t ai) {
        const index_t s = active[ai];
        const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
        // Tiled part.
        for (offset_t t = at.tile_row_ptr[s]; t < at.tile_row_ptr[s + 1];
             ++t) {
          const index_t out_tile = at.tile_col_id[t];
          const index_t out_base = out_tile * nt;
          const std::uint16_t* p = &at.intra_row_ptr[t * (nt + 1)];
          const offset_t base = at.tile_nnz_ptr[t];
          lock_tile(out_tile);
          bool touched = false;
          for (index_t lj = 0; lj < nt; ++lj) {
            const T xv = xt[lj];
            if (xv == S::zero()) continue;
            for (offset_t i = base + p[lj]; i < base + p[lj + 1]; ++i) {
              T& slot = yd[out_base + at.local_col[i]];
              slot = S::add(slot, S::mul(at.vals[i], xv));
              touched = true;
            }
          }
          if (touched) flag[out_tile] = 1;
          unlock_tile(out_tile);
        }
        // Extracted side part (row j of Aᵀ = column j of A).
        for (index_t lj = 0; lj < nt; ++lj) {
          const index_t j = s * nt + lj;
          if (j >= at.rows) break;
          const T xv = xt[lj];
          if (xv == S::zero()) continue;
          for (offset_t k = at.side_row_ptr[j]; k < at.side_row_ptr[j + 1];
               ++k) {
            const index_t i = at.extracted.col_idx[k];
            const index_t out_tile = i / nt;
            lock_tile(out_tile);
            yd[i] = S::add(yd[i], S::mul(at.extracted.vals[k], xv));
            flag[out_tile] = 1;
            unlock_tile(out_tile);
          }
        }
      },
      pool, /*chunk=*/4);

  SparseVec<T> y(out_n);
  for (index_t tr = 0; tr < out_tiles; ++tr) {
    if (!flag[tr]) continue;
    const index_t r_begin = tr * nt;
    const index_t r_end = std::min<index_t>(r_begin + nt, out_n);
    for (index_t r = r_begin; r < r_end; ++r) {
      if (yd[r] != S::zero()) y.push(r, yd[r]);
    }
  }
  return y;
}

/// Owning wrapper: preprocess A once for repeated semiring multiplies.
template <typename S, typename T = typename S::value_type>
class SemiringOperator {
 public:
  SemiringOperator(const Csr<T>& a, index_t nt = 16,
                   index_t extract_threshold = 2, ThreadPool* pool = nullptr)
      : nt_(nt),
        tiled_t_(TileMatrix<T>::from_csr(a.transpose(), nt,
                                         extract_threshold)),
        pool_(pool) {}

  SparseVec<T> multiply(const SparseVec<T>& x) const {
    const TileVector<T> xt = tile_vector_for_semiring(x);
    return tile_spmspv_semiring<S>(tiled_t_, xt, pool_);
  }

 private:
  /// TileVector's empty slots read as T{}; for semirings whose identity is
  /// not T{} (min-plus!) the padding inside non-empty tiles must be
  /// S::zero() instead, so the tile is built here with explicit fill.
  TileVector<T> tile_vector_for_semiring(const SparseVec<T>& x) const {
    TileVector<T> v;
    v.n = x.n;
    v.nt = nt_;
    const index_t tiles = ceil_div(x.n, nt_);
    v.x_ptr.assign(tiles, kEmptyTile);
    index_t slots = 0;
    for (index_t i : x.idx) {
      index_t& p = v.x_ptr[i / nt_];
      if (p == kEmptyTile) p = slots++;
    }
    v.x_tile.assign(static_cast<std::size_t>(slots) * nt_, S::zero());
    for (std::size_t k = 0; k < x.idx.size(); ++k) {
      const index_t i = x.idx[k];
      v.x_tile[v.x_ptr[i / nt_] * nt_ + i % nt_] = x.vals[k];
    }
    return v;
  }

  index_t nt_;
  TileMatrix<T> tiled_t_;
  ThreadPool* pool_;
};

}  // namespace tilespmspv
