// GraphBLAS-style semirings. The paper positions SpMSpV as a GraphBLAS /
// CombBLAS primitive, where the multiply is defined over an arbitrary
// semiring (add, mul, identity); TileBFS itself is the (OR, AND) instance
// specialized to bitmasks. This header defines the semiring concept used
// by the generic tiled kernel (core/tile_spmspv_semiring.hpp) so that
// algorithms like SSSP (min-plus) and reachability (or-and) run on the
// same tiled storage.
#pragma once

#include <algorithm>
#include <limits>

namespace tilespmspv {

/// Conventional arithmetic: the numeric SpMSpV of the paper's evaluation.
template <typename T>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() { return T{}; }
  static constexpr T add(T a, T b) { return a + b; }
  static constexpr T mul(T a, T b) { return a * b; }
};

/// Tropical semiring: shortest paths. add = min, mul = +, identity = inf.
template <typename T>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
  static constexpr T add(T a, T b) { return std::min(a, b); }
  static constexpr T mul(T a, T b) { return a + b; }
};

/// Boolean semiring: reachability. add = OR, mul = AND, identity = false.
/// Values are stored as the numeric 0/1 so the same containers serve.
template <typename T>
struct OrAnd {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static constexpr T add(T a, T b) { return (a != T{0} || b != T{0}) ? T{1} : T{0}; }
  static constexpr T mul(T a, T b) { return (a != T{0} && b != T{0}) ? T{1} : T{0}; }
};

/// Max-times: widest-path / maximum-reliability problems.
template <typename T>
struct MaxTimes {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static constexpr T add(T a, T b) { return std::max(a, b); }
  static constexpr T mul(T a, T b) { return a * b; }
};

}  // namespace tilespmspv
