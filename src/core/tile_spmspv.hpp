// TileSpMSpV — the paper's numeric kernel (Algorithm 4).
//
// One work unit per *work-balanced chunk* of tile rows (boundaries computed
// once at conversion, see tile/tile_chunks.hpp): every non-empty matrix tile
// in a tile row looks up its column position in the tiled vector's x_ptr in
// O(1); empty vector tiles are skipped without touching the tile payload.
// Surviving tiles run a tile-local CSR × dense-tile product into an
// NT-element register-like accumulator, with the gather+multiply half of the
// product vectorized (util/simd.hpp). The very sparse part extracted into
// COO at preprocessing time is processed by a separate edge-parallel pass
// merged into the same output (paper §3.2.1 / §3.4 hybrid).
//
// Execution-layer notes (this file implements all three scalar forms):
//   - the CSC form scatters into per-slot privatized buckets instead of
//     taking a CAS per value; buckets are merged during the gather, so the
//     hot loop carries no value atomics at all;
//   - phase 3 (gather) runs as a parallel range-concatenation: disjoint
//     tile ranges assemble privately sized from the flagged-tile count and
//     are spliced with a prefix sum, preserving the exact serial output;
//   - all scratch (active-tile lists, privatized buckets, gather buffers)
//     lives in SpmspvWorkspace, so steady-state multiplies allocate nothing.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "formats/sparse_vector.hpp"
#include "obs/counters.hpp"
#include "obs/shard_stats.hpp"
#include "obs/trace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_chunks.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/simd.hpp"
#include "util/types.hpp"

namespace tilespmspv {

namespace detail {

/// Stack scratch for the flat gather+multiply micro-kernel: covers every
/// tile up to 4096 entries (all of nt <= 64, and any realistically sparse
/// tile at larger nt); denser tiles fall back to per-row SIMD dots, where
/// rows are long enough for lane partials to amortize.
inline constexpr int kProdScratch = 4096;

/// Dense-in-tile accumulation for one intra-CSR tile: acc[lr] +=
/// sum_i vals[i] * xt[cols[i]] over the tile's local rows. For double the
/// gather+multiply runs through the SIMD layer (flat over the whole tile
/// when it fits the scratch, per-row dots otherwise); other value types
/// keep the straightforward scalar loops.
template <typename T>
inline void intra_tile_accumulate(const T* vals, const std::uint8_t* cols,
                                  const std::uint16_t* p, index_t nt,
                                  const T* xt, T* acc, T* prod) {  // lint:hot-path
  if constexpr (std::is_same_v<T, double>) {
    const int nnz = p[nt];
    if (nnz <= kProdScratch) {
      simd::gather_mul(vals, cols, nnz, xt, prod);
      for (index_t lr = 0; lr < nt; ++lr) {
        const int b = p[lr], e = p[lr + 1];
        if (e > b) acc[lr] += simd::range_sum(prod + b, e - b);
      }
      return;
    }
    for (index_t lr = 0; lr < nt; ++lr) {
      const int b = p[lr], e = p[lr + 1];
      if (e > b) acc[lr] += simd::dot_gather(vals + b, cols + b, e - b, xt);
    }
  } else {
    (void)prod;
    for (index_t lr = 0; lr < nt; ++lr) {
      T sum{};
      for (int i = p[lr]; i < p[lr + 1]; ++i) {
        sum += vals[i] * xt[cols[i]];
      }
      acc[lr] += sum;
    }
  }
}

/// Run-driven variant: `runs` lists the tile's non-empty local rows as
/// (row, count - 1, contiguous) byte triples covering the tile's entries
/// in order (see TileMatrix::build_row_runs). Sparse tiles touch only
/// their populated rows — no nt-iteration row-pointer scan — and the tile's
/// precomputed `strategy` selects the micro-kernel its run shape favors:
/// per-run dots (gather-free FMA on contiguous-column rows, hardware
/// gather on long scattered rows), the flat gather + segment sums, or a
/// plain scalar loop for tiles of a handful of entries.
template <typename T>
inline void intra_tile_accumulate_runs(const T* vals, const std::uint8_t* cols,
                                       const std::uint8_t* runs, int nruns,
                                       int nnz, std::uint8_t strategy,
                                       const T* xt, T* acc,
                                       T* prod) {  // lint:hot-path
  if constexpr (std::is_same_v<T, double>) {
    if (strategy == TileMatrix<T>::kRunFlat && nnz <= kProdScratch) {
      simd::gather_mul(vals, cols, nnz, xt, prod);
      int pos = 0;
      for (int ri = 0; ri < nruns; ++ri) {
        const std::size_t rb = static_cast<std::size_t>(ri) * 3;
        const int lr = runs[rb];
        const int c = runs[rb + 1] + 1;
        acc[lr] += simd::range_sum(prod + pos, c);
        pos += c;
      }
      return;
    }
    if (strategy != TileMatrix<T>::kRunTiny) {
      int pos = 0;
      for (int ri = 0; ri < nruns; ++ri) {
        const std::size_t rb = static_cast<std::size_t>(ri) * 3;
        const int lr = runs[rb];
        const int c = runs[rb + 1] + 1;
        if (c == 1) {
          acc[lr] += vals[pos] * xt[cols[pos]];
        } else if (runs[rb + 2]) {
          acc[lr] += simd::dot_contig(vals + pos, xt + cols[pos], c);
        } else if (c >= 8) {
          acc[lr] += simd::dot_gather(vals + pos, cols + pos, c, xt);
        } else {
          T sum{};
          for (int i = pos; i < pos + c; ++i) sum += vals[i] * xt[cols[i]];
          acc[lr] += sum;
        }
        pos += c;
      }
      return;
    }
  }
  (void)prod;
  (void)nnz;
  int pos = 0;
  for (int ri = 0; ri < nruns; ++ri) {
    const std::size_t rb = static_cast<std::size_t>(ri) * 3;
    const int lr = runs[rb];
    const int c = runs[rb + 1] + 1;
    T sum{};
    for (int i = pos; i < pos + c; ++i) sum += vals[i] * xt[cols[i]];
    acc[lr] += sum;
    pos += c;
  }
}

}  // namespace detail

/// Per-range buffers for the parallel gather (phase 3): each range of
/// output tiles assembles into its own pair of arrays, spliced afterwards.
/// Buffers keep their capacity across multiplies.
template <typename T>
struct GatherScratch {
  std::vector<std::vector<index_t>> idx;
  std::vector<std::vector<T>> vals;
  std::vector<std::size_t> offs;

  void ensure(index_t ranges) {
    if (static_cast<index_t>(idx.size()) < ranges) {
      idx.resize(ranges);
      vals.resize(ranges);
    }
    offs.assign(static_cast<std::size_t>(ranges) + 1, 0);
  }
};

/// Reusable buffers so per-multiply cost stays proportional to the touched
/// rows, not to the matrix size (important at vector sparsity 1e-4, where a
/// full O(rows) clear would dominate and hide the algorithm's advantage).
/// Invariants between calls: y_dense, tile_flag, priv_vals and priv_touched
/// are all-zero; priv_list entries are empty; `active` holds garbage.
template <typename T = value_t>
struct SpmspvWorkspace {
  std::vector<T> y_dense;                  // all-zero between calls
  std::vector<unsigned char> tile_flag;    // all-zero between calls

  // Hoisted scratch for the active-tile lists built each multiply.
  std::vector<index_t> active;

  // Privatized CSC scatter buckets: slot s owns priv_vals[s*stride ..] and
  // priv_touched[s*out_tiles ..]; priv_list[s] records which output tiles
  // slot s touched (for capacity-preserving clears only — the merge pass
  // discovers tiles from priv_touched).
  std::vector<T> priv_vals;
  std::vector<unsigned char> priv_touched;
  std::vector<std::vector<index_t>> priv_list;

  GatherScratch<T> gather;

  // Cached shard partition of the phase-1 chunk list (NUMA-sharded pools
  // only): chunk boundaries plus the payload bytes each shard covers.
  // Rebuilt when the chunk list identity or the shard count changes, so
  // steady-state multiplies pay nothing for it.
  std::vector<index_t> shard_bounds;
  std::vector<std::uint64_t> shard_bytes;
  const index_t* shard_key = nullptr;
  int shard_ns = 0;

  void ensure(index_t rows, index_t tile_rows) {
    if (static_cast<index_t>(y_dense.size()) < rows) {
      y_dense.assign(rows, T{});
    }
    if (static_cast<index_t>(tile_flag.size()) < tile_rows) {
      tile_flag.assign(tile_rows, 0);
    }
  }

  void ensure_csc(index_t out_tiles, index_t nt, int buckets) {
    const std::size_t need_vals = static_cast<std::size_t>(buckets) *
                                  static_cast<std::size_t>(out_tiles) * nt;
    if (priv_vals.size() < need_vals) priv_vals.resize(need_vals, T{});
    const std::size_t need_touched =
        static_cast<std::size_t>(buckets) * out_tiles;
    if (priv_touched.size() < need_touched) {
      priv_touched.resize(need_touched, 0);
    }
    if (priv_list.size() < static_cast<std::size_t>(buckets)) {
      priv_list.resize(buckets);
    }
    // The merge dedups the per-slot lists through tile_flag, so it must
    // span the *output* tile grid too.
    if (static_cast<index_t>(tile_flag.size()) < out_tiles) {
      tile_flag.assign(out_tiles, 0);
    }
  }
};

namespace detail {

/// Number of gather ranges for `tiles` output tile slots on `p`. 1 means
/// "assemble serially": small outputs, a single-slot pool, or a host
/// without real hardware parallelism (an oversubscribed pool would pay
/// the splice's extra output copy with no concurrent assembly to show
/// for it).
inline index_t gather_ranges(index_t tiles, ThreadPool& p) {
  static const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1 || p.size() <= 1 || tiles < 4096) return 1;
  return std::min<index_t>(tiles,
                           static_cast<index_t>(4 * p.size()));
}

/// Splices per-range gather buffers into one SparseVec via prefix sums.
/// Range buffers are cleared (capacity kept) on the way out.
template <typename T>
void splice_ranges(index_t ranges, GatherScratch<T>& gs, ThreadPool* pool,
                   SparseVec<T>& y) {
  for (index_t r = 0; r < ranges; ++r) {
    gs.offs[r + 1] = gs.offs[r] + gs.idx[r].size();
  }
  const std::size_t total = gs.offs[ranges];
  y.idx.resize(total);
  y.vals.resize(total);
  parallel_for(
      ranges,
      [&](index_t r) {
        std::copy(gs.idx[r].begin(), gs.idx[r].end(),
                  y.idx.begin() + gs.offs[r]);
        std::copy(gs.vals[r].begin(), gs.vals[r].end(),
                  y.vals.begin() + gs.offs[r]);
        gs.idx[r].clear();
        gs.vals[r].clear();
      },
      pool, /*chunk=*/1);
}

/// Phase-3 gather over a dense accumulator + per-tile flags (CSR and masked
/// forms): emits nonzeros of flagged tiles in index order, restoring the
/// all-zero workspace invariant. `mask` (optional) suppresses emission at
/// positions where mask[r] == complement; the accumulator is cleared either
/// way. Parallel ranges produce bit-identical output to the serial loop.
template <typename T>
SparseVec<T> gather_flagged_tiles(index_t n, index_t tiles, index_t nt, T* yd,
                                  unsigned char* flag, GatherScratch<T>& gs,
                                  ThreadPool* pool,
                                  const std::vector<bool>* mask,
                                  bool complement) {
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  SparseVec<T> y(n);
  const index_t ranges = gather_ranges(tiles, p);

  const auto assemble = [&](index_t t_begin, index_t t_end,
                            std::vector<index_t>& out_idx,
                            std::vector<T>& out_vals) {
    // Size from the flagged-tile count: at most nt entries per flagged
    // tile, so one scan replaces geometric reallocation during the pushes.
    index_t flagged = 0;
    for (index_t tr = t_begin; tr < t_end; ++tr) flagged += flag[tr] ? 1 : 0;
    out_idx.reserve(out_idx.size() + static_cast<std::size_t>(flagged) * nt);
    out_vals.reserve(out_vals.size() + static_cast<std::size_t>(flagged) * nt);
    for (index_t tr = t_begin; tr < t_end; ++tr) {
      if (!flag[tr]) continue;
      flag[tr] = 0;
      const index_t r_begin = tr * nt;
      const index_t r_end = std::min<index_t>(r_begin + nt, n);
      for (index_t r = r_begin; r < r_end; ++r) {
        if (yd[r] != T{} &&
            (mask == nullptr || (*mask)[r] != complement)) {
          out_idx.push_back(r);
          out_vals.push_back(yd[r]);
        }
        yd[r] = T{};
      }
    }
  };

  if (ranges <= 1) {
    assemble(0, tiles, y.idx, y.vals);
    return y;
  }
  gs.ensure(ranges);
  const index_t per = ceil_div(tiles, ranges);
  parallel_for(
      ranges,
      [&](index_t r) {
        const index_t t_begin = r * per;
        const index_t t_end = std::min<index_t>(t_begin + per, tiles);
        assemble(t_begin, t_end, gs.idx[r], gs.vals[r]);
      },
      &p, /*chunk=*/1);
  splice_ranges(ranges, gs, &p, y);
  return y;
}

/// Shard partition of the phase-1 chunk list for a NUMA-sharded pool,
/// weighted by the payload bytes each chunk's tile rows cover (tile
/// metadata + intra-tile entries) so the per-node byte footprint — not the
/// chunk count — is what balances. Cached in the workspace keyed on the
/// chunk-list identity and the shard count; also publishes the per-shard
/// byte totals to the shard observability counters.
template <typename T>
const std::vector<index_t>& phase1_shard_bounds(SpmspvWorkspace<T>& ws,
                                                const TileMatrix<T>& a,
                                                const index_t* chunk_ptr,
                                                index_t nchunks, int ns) {
  if (ws.shard_key != chunk_ptr || ws.shard_ns != ns ||
      ws.shard_bounds.empty() || ws.shard_bounds.back() != nchunks) {
    ShardPlan plan = make_shard_plan(nchunks, ns, [&](index_t c) {
      const index_t tr0 = chunk_ptr[c];
      const index_t tr1 = chunk_ptr[c + 1];
      const offset_t t0 = a.tile_row_ptr[tr0];
      const offset_t t1 = a.tile_row_ptr[tr1];
      const offset_t nnz = a.tile_nnz_ptr[t1] - a.tile_nnz_ptr[t0];
      return static_cast<std::uint64_t>(t1 - t0) *
                 (sizeof(index_t) + sizeof(offset_t) +
                  static_cast<std::size_t>(a.nt + 1) * sizeof(std::uint16_t)) +
             static_cast<std::uint64_t>(nnz) * (sizeof(T) + 1);
    });
    ws.shard_bounds = std::move(plan.chunk_bounds);
    ws.shard_bytes = std::move(plan.bytes);
    ws.shard_key = chunk_ptr;
    ws.shard_ns = ns;
  }
  for (int s = 0; s < ns; ++s) {
    obs::shard_set_bytes(s, ws.shard_bytes[static_cast<std::size_t>(s)]);
  }
  return ws.shard_bounds;
}

}  // namespace detail

/// y = A x with A in tiled form and x in tiled vector form.
template <typename T>
SparseVec<T> tile_spmspv(const TileMatrix<T>& a, const TileVector<T>& x,
                         SpmspvWorkspace<T>& ws, ThreadPool* pool = nullptr) {
  const index_t nt = a.nt;
  ws.ensure(a.rows, a.tile_rows);
  T* yd = ws.y_dense.data();
  unsigned char* flag = ws.tile_flag.data();

  // Phase 1: tiled part, one task per work-balanced chunk of tile rows
  // (paper Alg. 4 with conversion-time weighted scheduling). Counters
  // accumulate into locals and flush once per chunk; with counters
  // compiled out the adds are dead and the locals fold away.
  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "csr");
    std::vector<index_t> fallback;
    const std::vector<index_t>* cp = &a.row_chunk_ptr;
    if (cp->size() < 2) {
      fallback = uniform_row_chunks(a.tile_rows, 8);
      cp = &fallback;
    }
    const auto nchunks = static_cast<index_t>(cp->size()) - 1;
    const index_t* chunk_ptr = cp->data();
    const bool have_runs =
        a.run_ptr.size() == static_cast<std::size_t>(a.num_tiles()) + 1;
    const auto chunk_body = [&](index_t c) {
          T acc[256];  // nt <= 256 by TileMatrix invariant
          T prod[detail::kProdScratch];
          std::uint64_t scanned = 0, computed = 0, macs = 0;
          for (index_t tr = chunk_ptr[c]; tr < chunk_ptr[c + 1]; ++tr) {
            bool any = false;
            for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
                 ++t) {
              ++scanned;
              const index_t tile_colid = a.tile_col_id[t];
              const index_t x_offset = x.x_ptr[tile_colid];  // O(1) position
              if (x_offset == kEmptyTile) continue;  // skip empty x tile
              ++computed;
              const offset_t base = a.tile_nnz_ptr[t];
              const auto tile_nnz =
                  static_cast<int>(a.tile_nnz_ptr[t + 1] - base);
              macs += static_cast<std::uint64_t>(tile_nnz);
              const T* xt =
                  &x.x_tile[static_cast<std::size_t>(x_offset) * nt];
              if (!any) {
                for (index_t i = 0; i < nt; ++i) acc[i] = T{};
                any = true;
              }
              if (have_runs) {
                detail::intra_tile_accumulate_runs(
                    &a.vals[base], &a.local_col[base],
                    a.row_runs.data() + 3 * a.run_ptr[t],
                    static_cast<int>(a.run_ptr[t + 1] - a.run_ptr[t]),
                    tile_nnz, a.tile_strategy[t], xt, acc, prod);
              } else {
                detail::intra_tile_accumulate(
                    &a.vals[base], &a.local_col[base],
                    &a.intra_row_ptr[t * (nt + 1)], nt, xt, acc, prod);
              }
            }
            if (any) {
              const index_t r_begin = tr * nt;
              const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
              for (index_t r = r_begin; r < r_end; ++r) {
                yd[r] = acc[r - r_begin];
              }
              flag[tr] = 1;
            }
          }
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesSkippedEmpty,
                           scanned - computed);
          obs::counter_add(obs::Counter::kTilesComputed, computed);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
          obs::shard_add_tiles(ThreadPool::current_shard(), scanned);
    };
    ThreadPool& p1 = pool ? *pool : ThreadPool::shared();
    if (p1.num_shards() > 1 && nchunks > 1) {
      // NUMA-sharded dispatch: each shard's workers drain the chunks whose
      // tile rows live (first-touch) on their node, stealing cross-node
      // only once their shard is dry.
      const std::vector<index_t>& sb = detail::phase1_shard_bounds(
          ws, a, chunk_ptr, nchunks, p1.num_shards());
      p1.parallel_shard_ranges(sb, 1, [&](index_t begin, index_t end) {
        for (index_t c = begin; c < end; ++c) chunk_body(c);
      });
    } else {
      parallel_for(nchunks, chunk_body, pool, /*chunk=*/1);
    }
  }

  // Phase 2: extracted very-sparse part, driven by the active columns so
  // its cost is proportional to nnz(x), not to the side-matrix size.
  if (a.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "csr");
    ws.active.clear();
    for (index_t s = 0; s < x.num_tiles(); ++s) {
      if (x.x_ptr[s] != kEmptyTile) ws.active.push_back(s);
    }
    const std::vector<index_t>& active = ws.active;
    parallel_for(
        static_cast<index_t>(active.size()),
        [&](index_t ai) {
          const index_t s = active[ai];
          const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t side = 0;
          for (index_t lj = 0; lj < nt; ++lj) {
            const index_t j = s * nt + lj;
            if (j >= a.cols) break;
            const T xv = xt[lj];
            if (xv == T{}) continue;
            side += static_cast<std::uint64_t>(a.side_col_ptr[j + 1] -
                                               a.side_col_ptr[j]);
            for (offset_t i = a.side_col_ptr[j]; i < a.side_col_ptr[j + 1];
                 ++i) {
              const index_t r = a.side_row_idx[i];
              atomic_add(&yd[r], a.side_vals[i] * xv);
              atomic_or<unsigned char>(&flag[r / nt], 1);
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        pool, /*chunk=*/16);
  }

  // Phase 3: gather touched tile rows into the sparse result and restore
  // the workspace's all-zero invariant.
  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "csr");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(a.tile_rows));
  return detail::gather_flagged_tiles(a.rows, a.tile_rows, nt, yd, flag,
                                      ws.gather, pool, nullptr, false);
}

/// Convenience overload owning a transient workspace.
template <typename T>
SparseVec<T> tile_spmspv(const TileMatrix<T>& a, const TileVector<T>& x,
                         ThreadPool* pool = nullptr) {
  SpmspvWorkspace<T> ws;
  return tile_spmspv(a, x, ws, pool);
}

/// CSC-form TileSpMSpV (paper §3.2.3: "we provide two forms of SpMSpV
/// algorithms: CSR-SpMSpV and CSC-SpMSpV", selected by vector density).
///
/// Vector-driven: only the tile *columns* whose vector tile is non-empty
/// are visited, so the cost is proportional to the active part of the
/// matrix — the winning regime for very sparse x, where the CSR form's
/// scan over all tile rows' metadata would dominate.
///
/// `at` is the tiled form of Aᵀ: a tile row of Aᵀ is a tile column of A,
/// a local row is an input (column) index of A and a local column an
/// output (row) index, so the same TileMatrix structure serves both
/// orientations. Several tile columns can scatter into the same output
/// tile; instead of the paper's atomic merge, each pool slot scatters into
/// its own privatized bucket (owner-computes two-pass scheme) and the
/// buckets are summed during the gather, so the hot loop performs no value
/// atomics at all.
template <typename T>
SparseVec<T> tile_spmspv_csc(const TileMatrix<T>& at, const TileVector<T>& x,
                             SpmspvWorkspace<T>& ws,
                             ThreadPool* pool = nullptr) {
  const index_t nt = at.nt;
  const index_t out_n = at.cols;  // rows of A
  const index_t out_tiles = at.tile_cols;
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  const int buckets = static_cast<int>(p.size());
  const std::size_t stride =
      static_cast<std::size_t>(out_tiles) * static_cast<std::size_t>(nt);
  ws.ensure_csc(out_tiles, nt, buckets);

  // Active tile columns of A = non-empty tiles of x = tile rows of Aᵀ with
  // a matching vector tile.
  ws.active.clear();
  for (index_t s = 0; s < x.num_tiles(); ++s) {
    if (x.x_ptr[s] != kEmptyTile && s < at.tile_rows &&
        at.tile_row_ptr[s] < at.tile_row_ptr[s + 1]) {
      ws.active.push_back(s);
    }
  }
  const std::vector<index_t>& active = ws.active;

  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "csc");
    parallel_for(
        static_cast<index_t>(active.size()),
        [&](index_t ai) {
          const int slot = ThreadPool::scratch_slot();
          assert(slot < buckets);
          T* pv = ws.priv_vals.data() + static_cast<std::size_t>(slot) * stride;
          unsigned char* pt =
              ws.priv_touched.data() +
              static_cast<std::size_t>(slot) * out_tiles;
          std::vector<index_t>& plist = ws.priv_list[slot];

          const index_t s = active[ai];
          const T* xt =
              &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t scanned = 0, macs = 0;
          for (offset_t t = at.tile_row_ptr[s]; t < at.tile_row_ptr[s + 1];
               ++t) {
            ++scanned;
            const index_t out_tile = at.tile_col_id[t];
            T* tb = pv + static_cast<std::size_t>(out_tile) * nt;
            const std::uint16_t* rp = &at.intra_row_ptr[t * (nt + 1)];
            const offset_t base = at.tile_nnz_ptr[t];
            bool touched = false;
            for (index_t lj = 0; lj < nt; ++lj) {  // local input index
              const T xv = xt[lj];
              if (xv == T{}) continue;
              const int b = rp[lj], e = rp[lj + 1];
              if (e == b) continue;
              macs += static_cast<std::uint64_t>(e - b);
              touched = true;
              for (offset_t i = base + b; i < base + e; ++i) {
                tb[at.local_col[i]] += at.vals[i] * xv;
              }
            }
            if (touched && !pt[out_tile]) {
              pt[out_tile] = 1;
              plist.push_back(out_tile);
            }
          }
          // Vector-driven form: every scanned tile is computed (there is no
          // metadata-only skip), so the two counters move together.
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesComputed, scanned);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
        },
        &p, /*chunk=*/2);
  }

  // Extracted side part of Aᵀ: entry (j, i) of Aᵀ is A[i][j], so walking
  // extracted *rows* j selected by x visits exactly the active columns of
  // A (side_row_ptr indexes the row-major extracted COO). Scatters into
  // the same privatized buckets as phase 1 (bucket element i lives at
  // pv[i] because the bucket layout is tile-major and tiles are
  // contiguous), so this pass is value-atomic-free as well.
  if (at.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "csc");
    ws.active.clear();
    for (index_t s = 0; s < x.num_tiles(); ++s) {
      if (x.x_ptr[s] != kEmptyTile) ws.active.push_back(s);
    }
    const std::vector<index_t>& x_active = ws.active;
    parallel_for(
        static_cast<index_t>(x_active.size()),
        [&](index_t ai) {
          const int slot = ThreadPool::scratch_slot();
          assert(slot < buckets);
          T* pv = ws.priv_vals.data() + static_cast<std::size_t>(slot) * stride;
          unsigned char* pt =
              ws.priv_touched.data() +
              static_cast<std::size_t>(slot) * out_tiles;
          std::vector<index_t>& plist = ws.priv_list[slot];

          const index_t s = x_active[ai];
          const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t side = 0;
          for (index_t lj = 0; lj < nt; ++lj) {
            const index_t j = s * nt + lj;
            if (j >= at.rows) break;
            const T xv = xt[lj];
            if (xv == T{}) continue;
            side += static_cast<std::uint64_t>(at.side_row_ptr[j + 1] -
                                               at.side_row_ptr[j]);
            for (offset_t k = at.side_row_ptr[j]; k < at.side_row_ptr[j + 1];
                 ++k) {
              const index_t i = at.extracted.col_idx[k];
              pv[i] += at.extracted.vals[k] * xv;
              const index_t ot = i / nt;
              if (!pt[ot]) {
                pt[ot] = 1;
                plist.push_back(ot);
              }
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        &p, /*chunk=*/16);
  }

  // Phase 3: merge the privatized buckets and gather, driven by the union
  // of the per-slot touched lists — cost proportional to the tiles the
  // multiply actually produced, never to the output tile grid (the old
  // atomic kernel's gather scanned every output tile's flag). Sorting the
  // union keeps the emitted indices ordered; each candidate tile is owned
  // by exactly one range, so bucket blocks are read, summed and re-zeroed
  // without synchronization.
  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "csc");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(out_tiles));
  SparseVec<T> y(out_n);
  unsigned char* mflag = ws.tile_flag.data();
  ws.active.clear();  // phases 1-2 are done with it; reuse for the union
  for (int bk = 0; bk < buckets; ++bk) {
    for (const index_t ot : ws.priv_list[bk]) {
      if (!mflag[ot]) {
        mflag[ot] = 1;
        ws.active.push_back(ot);
      }
    }
    ws.priv_list[bk].clear();
  }
  std::sort(ws.active.begin(), ws.active.end());
  const std::vector<index_t>& cand = ws.active;
  const auto ncand = static_cast<index_t>(cand.size());

  const auto merge_range = [&](index_t c_begin, index_t c_end,
                               std::vector<index_t>& out_idx,
                               std::vector<T>& out_vals) {
    out_idx.reserve(out_idx.size() +
                    static_cast<std::size_t>(c_end - c_begin) * nt);
    out_vals.reserve(out_vals.size() +
                     static_cast<std::size_t>(c_end - c_begin) * nt);
    T merged[256];  // nt <= 256 by TileMatrix invariant
    for (index_t ci = c_begin; ci < c_end; ++ci) {
      const index_t ot = cand[ci];
      mflag[ot] = 0;
      bool any = false;
      for (int bk = 0; bk < buckets; ++bk) {
        unsigned char& touched =
            ws.priv_touched[static_cast<std::size_t>(bk) * out_tiles + ot];
        if (!touched) continue;
        touched = 0;
        T* tb = ws.priv_vals.data() + static_cast<std::size_t>(bk) * stride +
                static_cast<std::size_t>(ot) * nt;
        if (!any) {
          for (index_t i = 0; i < nt; ++i) {
            merged[i] = tb[i];
            tb[i] = T{};
          }
          any = true;
        } else {
          for (index_t i = 0; i < nt; ++i) {
            merged[i] += tb[i];
            tb[i] = T{};
          }
        }
      }
      if (!any) continue;  // unreachable: every listed tile has a bucket
      const index_t r_begin = ot * nt;
      const index_t r_end = std::min<index_t>(r_begin + nt, out_n);
      for (index_t r = r_begin; r < r_end; ++r) {
        if (merged[r - r_begin] != T{}) {
          out_idx.push_back(r);
          out_vals.push_back(merged[r - r_begin]);
        }
      }
    }
  };

  const index_t ranges = detail::gather_ranges(ncand, p);
  if (ranges <= 1) {
    merge_range(0, ncand, y.idx, y.vals);
  } else {
    ws.gather.ensure(ranges);
    const index_t per = ceil_div(ncand, ranges);
    parallel_for(
        ranges,
        [&](index_t r) {
          const index_t c_begin = r * per;
          const index_t c_end = std::min<index_t>(c_begin + per, ncand);
          merge_range(c_begin, c_end, ws.gather.idx[r], ws.gather.vals[r]);
        },
        &p, /*chunk=*/1);
    detail::splice_ranges(ranges, ws.gather, &p, y);
  }
  return y;
}

template <typename T>
SparseVec<T> tile_spmspv_csc(const TileMatrix<T>& at, const TileVector<T>& x,
                             ThreadPool* pool = nullptr) {
  SpmspvWorkspace<T> ws;
  return tile_spmspv_csc(at, x, ws, pool);
}

/// Masked SpMSpV: y<mask> = A x, the GraphBLAS fused form. Only output
/// positions allowed by the mask are emitted — with `complement` set,
/// positions NOT in the mask (the BFS recurrence: next = (A·frontier)
/// masked by the complement of visited). The multiply itself runs
/// unmasked (output positions are unknown until computed); the fusion
/// saves the intermediate vector materialization and the second merge
/// pass of mask(tile_spmspv(...), m).
template <typename T>
SparseVec<T> tile_spmspv_masked(const TileMatrix<T>& a,
                                const TileVector<T>& x,
                                const std::vector<bool>& mask_dense,
                                bool complement, SpmspvWorkspace<T>& ws,
                                ThreadPool* pool = nullptr) {
  assert(static_cast<index_t>(mask_dense.size()) == a.rows);
  // Phases 1-2 identical to tile_spmspv; phase 3 applies the mask during
  // the gather, so masked-out values never reach the output vector.
  const index_t nt = a.nt;
  ws.ensure(a.rows, a.tile_rows);
  T* yd = ws.y_dense.data();
  unsigned char* flag = ws.tile_flag.data();

  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "masked");
    std::vector<index_t> fallback;
    const std::vector<index_t>* cp = &a.row_chunk_ptr;
    if (cp->size() < 2) {
      fallback = uniform_row_chunks(a.tile_rows, 8);
      cp = &fallback;
    }
    const auto nchunks = static_cast<index_t>(cp->size()) - 1;
    const index_t* chunk_ptr = cp->data();
    const bool have_runs =
        a.run_ptr.size() == static_cast<std::size_t>(a.num_tiles()) + 1;
    const auto chunk_body = [&](index_t c) {
          T acc[256];
          T prod[detail::kProdScratch];
          std::uint64_t scanned = 0, computed = 0, macs = 0;
          for (index_t tr = chunk_ptr[c]; tr < chunk_ptr[c + 1]; ++tr) {
            bool any = false;
            for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
                 ++t) {
              ++scanned;
              const index_t x_offset = x.x_ptr[a.tile_col_id[t]];
              if (x_offset == kEmptyTile) continue;
              ++computed;
              const offset_t base = a.tile_nnz_ptr[t];
              const auto tile_nnz =
                  static_cast<int>(a.tile_nnz_ptr[t + 1] - base);
              macs += static_cast<std::uint64_t>(tile_nnz);
              const T* xt =
                  &x.x_tile[static_cast<std::size_t>(x_offset) * nt];
              if (!any) {
                for (index_t i = 0; i < nt; ++i) acc[i] = T{};
                any = true;
              }
              if (have_runs) {
                detail::intra_tile_accumulate_runs(
                    &a.vals[base], &a.local_col[base],
                    a.row_runs.data() + 3 * a.run_ptr[t],
                    static_cast<int>(a.run_ptr[t + 1] - a.run_ptr[t]),
                    tile_nnz, a.tile_strategy[t], xt, acc, prod);
              } else {
                detail::intra_tile_accumulate(
                    &a.vals[base], &a.local_col[base],
                    &a.intra_row_ptr[t * (nt + 1)], nt, xt, acc, prod);
              }
            }
            if (any) {
              const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
              for (index_t r = tr * nt; r < r_end; ++r) {
                yd[r] = acc[r - tr * nt];
              }
              flag[tr] = 1;
            }
          }
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesSkippedEmpty,
                           scanned - computed);
          obs::counter_add(obs::Counter::kTilesComputed, computed);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
          obs::shard_add_tiles(ThreadPool::current_shard(), scanned);
    };
    ThreadPool& p1 = pool ? *pool : ThreadPool::shared();
    if (p1.num_shards() > 1 && nchunks > 1) {
      const std::vector<index_t>& sb = detail::phase1_shard_bounds(
          ws, a, chunk_ptr, nchunks, p1.num_shards());
      p1.parallel_shard_ranges(sb, 1, [&](index_t begin, index_t end) {
        for (index_t c = begin; c < end; ++c) chunk_body(c);
      });
    } else {
      parallel_for(nchunks, chunk_body, pool, /*chunk=*/1);
    }
  }

  if (a.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "masked");
    ws.active.clear();
    for (index_t s = 0; s < x.num_tiles(); ++s) {
      if (x.x_ptr[s] != kEmptyTile) ws.active.push_back(s);
    }
    const std::vector<index_t>& active = ws.active;
    parallel_for(
        static_cast<index_t>(active.size()),
        [&](index_t ai) {
          const index_t s = active[ai];
          const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t side = 0;
          for (index_t lj = 0; lj < nt; ++lj) {
            const index_t j = s * nt + lj;
            if (j >= a.cols) break;
            const T xv = xt[lj];
            if (xv == T{}) continue;
            side += static_cast<std::uint64_t>(a.side_col_ptr[j + 1] -
                                               a.side_col_ptr[j]);
            for (offset_t i = a.side_col_ptr[j]; i < a.side_col_ptr[j + 1];
                 ++i) {
              const index_t r = a.side_row_idx[i];
              atomic_add(&yd[r], a.side_vals[i] * xv);
              atomic_or<unsigned char>(&flag[r / nt], 1);
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        pool, /*chunk=*/16);
  }

  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "masked");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(a.tile_rows));
  return detail::gather_flagged_tiles(a.rows, a.tile_rows, nt, yd, flag,
                                      ws.gather, pool, &mask_dense,
                                      complement);
}

}  // namespace tilespmspv
