// TileSpMSpV — the paper's numeric kernel (Algorithm 4).
//
// One work unit ("warp") per row of tiles: every non-empty matrix tile in
// the tile row looks up its column position in the tiled vector's x_ptr in
// O(1); empty vector tiles are skipped without touching the tile payload.
// Surviving tiles run a tile-local CSR × dense-tile product into an
// NT-element register-like accumulator. The very sparse part extracted
// into COO at preprocessing time is processed by a separate edge-parallel
// pass merged into the same output (paper §3.2.1 / §3.4 hybrid).
#pragma once

#include <vector>

#include "formats/sparse_vector.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Reusable buffers so per-multiply cost stays proportional to the touched
/// rows, not to the matrix size (important at vector sparsity 1e-4, where a
/// full O(rows) clear would dominate and hide the algorithm's advantage).
template <typename T = value_t>
struct SpmspvWorkspace {
  std::vector<T> y_dense;                  // all-zero between calls
  std::vector<unsigned char> tile_flag;    // all-zero between calls

  void ensure(index_t rows, index_t tile_rows) {
    if (static_cast<index_t>(y_dense.size()) < rows) {
      y_dense.assign(rows, T{});
    }
    if (static_cast<index_t>(tile_flag.size()) < tile_rows) {
      tile_flag.assign(tile_rows, 0);
    }
  }
};

/// y = A x with A in tiled form and x in tiled vector form.
template <typename T>
SparseVec<T> tile_spmspv(const TileMatrix<T>& a, const TileVector<T>& x,
                         SpmspvWorkspace<T>& ws, ThreadPool* pool = nullptr) {
  const index_t nt = a.nt;
  ws.ensure(a.rows, a.tile_rows);
  T* yd = ws.y_dense.data();
  unsigned char* flag = ws.tile_flag.data();

  // Phase 1: tiled part, one task per tile row (paper Alg. 4). Counters
  // accumulate into locals and flush once per tile row; with counters
  // compiled out the adds are dead and the locals fold away.
  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "csr");
    parallel_for(
        a.tile_rows,
        [&](index_t tr) {
          T acc[256];  // nt <= 256 by TileMatrix invariant
          bool any = false;
          std::uint64_t scanned = 0, computed = 0, macs = 0;
          for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
               ++t) {
            ++scanned;
            const index_t tile_colid = a.tile_col_id[t];
            const index_t x_offset = x.x_ptr[tile_colid];  // O(1) positioning
            if (x_offset == kEmptyTile) continue;          // skip empty x tile
            ++computed;
            macs += static_cast<std::uint64_t>(a.tile_nnz_ptr[t + 1] -
                                               a.tile_nnz_ptr[t]);
            const T* xt = &x.x_tile[static_cast<std::size_t>(x_offset) * nt];
            if (!any) {
              for (index_t i = 0; i < nt; ++i) acc[i] = T{};
              any = true;
            }
            const std::uint16_t* p = &a.intra_row_ptr[t * (nt + 1)];
            const offset_t base = a.tile_nnz_ptr[t];
            for (index_t lr = 0; lr < nt; ++lr) {
              T sum{};
              for (offset_t i = base + p[lr]; i < base + p[lr + 1]; ++i) {
                sum += a.vals[i] * xt[a.local_col[i]];
              }
              acc[lr] += sum;
            }
          }
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesSkippedEmpty,
                           scanned - computed);
          obs::counter_add(obs::Counter::kTilesComputed, computed);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
          if (any) {
            const index_t r_begin = tr * nt;
            const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
            for (index_t r = r_begin; r < r_end; ++r) {
              yd[r] = acc[r - r_begin];
            }
            flag[tr] = 1;
          }
        },
        pool, /*chunk=*/8);
  }

  // Phase 2: extracted very-sparse part, driven by the active columns so
  // its cost is proportional to nnz(x), not to the side-matrix size.
  if (a.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "csr");
    std::vector<index_t> active;
    for (index_t s = 0; s < x.num_tiles(); ++s) {
      if (x.x_ptr[s] != kEmptyTile) active.push_back(s);
    }
    parallel_for(
        static_cast<index_t>(active.size()),
        [&](index_t ai) {
          const index_t s = active[ai];
          const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t side = 0;
          for (index_t lj = 0; lj < nt; ++lj) {
            const index_t j = s * nt + lj;
            if (j >= a.cols) break;
            const T xv = xt[lj];
            if (xv == T{}) continue;
            side += static_cast<std::uint64_t>(a.side_col_ptr[j + 1] -
                                               a.side_col_ptr[j]);
            for (offset_t i = a.side_col_ptr[j]; i < a.side_col_ptr[j + 1];
                 ++i) {
              const index_t r = a.side_row_idx[i];
              atomic_add(&yd[r], a.side_vals[i] * xv);
              atomic_or<unsigned char>(&flag[r / nt], 1);
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        pool, /*chunk=*/16);
  }

  // Phase 3: gather touched tile rows into the sparse result and restore
  // the workspace's all-zero invariant.
  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "csr");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(a.tile_rows));
  SparseVec<T> y(a.rows);
  for (index_t tr = 0; tr < a.tile_rows; ++tr) {
    if (!flag[tr]) continue;
    flag[tr] = 0;
    const index_t r_begin = tr * nt;
    const index_t r_end = std::min<index_t>(r_begin + nt, a.rows);
    for (index_t r = r_begin; r < r_end; ++r) {
      if (yd[r] != T{}) y.push(r, yd[r]);
      yd[r] = T{};
    }
  }
  return y;
}

/// Convenience overload owning a transient workspace.
template <typename T>
SparseVec<T> tile_spmspv(const TileMatrix<T>& a, const TileVector<T>& x,
                         ThreadPool* pool = nullptr) {
  SpmspvWorkspace<T> ws;
  return tile_spmspv(a, x, ws, pool);
}

/// CSC-form TileSpMSpV (paper §3.2.3: "we provide two forms of SpMSpV
/// algorithms: CSR-SpMSpV and CSC-SpMSpV", selected by vector density).
///
/// Vector-driven: only the tile *columns* whose vector tile is non-empty
/// are visited, so the cost is proportional to the active part of the
/// matrix — the winning regime for very sparse x, where the CSR form's
/// scan over all tile rows' metadata would dominate.
///
/// `at` is the tiled form of Aᵀ: a tile row of Aᵀ is a tile column of A,
/// a local row is an input (column) index of A and a local column an
/// output (row) index, so the same TileMatrix structure serves both
/// orientations. Several tile columns can scatter into the same output
/// tile, hence the atomic merge (the paper's Push-CSC does the same with
/// atomic OR).
template <typename T>
SparseVec<T> tile_spmspv_csc(const TileMatrix<T>& at, const TileVector<T>& x,
                             SpmspvWorkspace<T>& ws,
                             ThreadPool* pool = nullptr) {
  const index_t nt = at.nt;
  const index_t out_n = at.cols;  // rows of A
  const index_t out_tiles = at.tile_cols;
  ws.ensure(out_n, out_tiles);
  T* yd = ws.y_dense.data();
  unsigned char* flag = ws.tile_flag.data();

  // Active tile columns of A = non-empty tiles of x = tile rows of Aᵀ with
  // a matching vector tile.
  std::vector<index_t> active;
  for (index_t s = 0; s < x.num_tiles(); ++s) {
    if (x.x_ptr[s] != kEmptyTile && s < at.tile_rows &&
        at.tile_row_ptr[s] < at.tile_row_ptr[s + 1]) {
      active.push_back(s);
    }
  }

  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "csc");
    parallel_for(
        static_cast<index_t>(active.size()),
        [&](index_t ai) {
          const index_t s = active[ai];
          const T* xt =
              &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t scanned = 0, macs = 0;
          for (offset_t t = at.tile_row_ptr[s]; t < at.tile_row_ptr[s + 1];
               ++t) {
            ++scanned;
            const index_t out_tile = at.tile_col_id[t];
            const index_t out_base = out_tile * nt;
            const std::uint16_t* p = &at.intra_row_ptr[t * (nt + 1)];
            const offset_t base = at.tile_nnz_ptr[t];
            bool touched = false;
            for (index_t lj = 0; lj < nt; ++lj) {  // local input index
              const T xv = xt[lj];
              if (xv == T{}) continue;
              macs += static_cast<std::uint64_t>(p[lj + 1] - p[lj]);
              for (offset_t i = base + p[lj]; i < base + p[lj + 1]; ++i) {
                atomic_add(&yd[out_base + at.local_col[i]], at.vals[i] * xv);
                touched = true;
              }
            }
            if (touched) atomic_or<unsigned char>(&flag[out_tile], 1);
          }
          // Vector-driven form: every scanned tile is computed (there is no
          // metadata-only skip), so the two counters move together.
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesComputed, scanned);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
        },
        pool, /*chunk=*/2);
  }

  // Extracted side part of Aᵀ: entry (j, i) of Aᵀ is A[i][j], so walking
  // extracted *rows* j selected by x visits exactly the active columns of
  // A (side_row_ptr indexes the row-major extracted COO).
  if (at.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "csc");
    std::vector<index_t> x_active;
    for (index_t s = 0; s < x.num_tiles(); ++s) {
      if (x.x_ptr[s] != kEmptyTile) x_active.push_back(s);
    }
    parallel_for(
        static_cast<index_t>(x_active.size()),
        [&](index_t ai) {
          const index_t s = x_active[ai];
          const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t side = 0;
          for (index_t lj = 0; lj < nt; ++lj) {
            const index_t j = s * nt + lj;
            if (j >= at.rows) break;
            const T xv = xt[lj];
            if (xv == T{}) continue;
            side += static_cast<std::uint64_t>(at.side_row_ptr[j + 1] -
                                               at.side_row_ptr[j]);
            for (offset_t k = at.side_row_ptr[j]; k < at.side_row_ptr[j + 1];
                 ++k) {
              const index_t i = at.extracted.col_idx[k];
              atomic_add(&yd[i], at.extracted.vals[k] * xv);
              atomic_or<unsigned char>(&flag[i / nt], 1);
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        pool, /*chunk=*/16);
  }

  // Gather touched output tiles (same as the CSR form's phase 3).
  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "csc");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(out_tiles));
  SparseVec<T> y(out_n);
  for (index_t tr = 0; tr < out_tiles; ++tr) {
    if (!flag[tr]) continue;
    flag[tr] = 0;
    const index_t r_begin = tr * nt;
    const index_t r_end = std::min<index_t>(r_begin + nt, out_n);
    for (index_t r = r_begin; r < r_end; ++r) {
      if (yd[r] != T{}) y.push(r, yd[r]);
      yd[r] = T{};
    }
  }
  return y;
}

template <typename T>
SparseVec<T> tile_spmspv_csc(const TileMatrix<T>& at, const TileVector<T>& x,
                             ThreadPool* pool = nullptr) {
  SpmspvWorkspace<T> ws;
  return tile_spmspv_csc(at, x, ws, pool);
}

/// Masked SpMSpV: y<mask> = A x, the GraphBLAS fused form. Only output
/// positions allowed by the mask are emitted — with `complement` set,
/// positions NOT in the mask (the BFS recurrence: next = (A·frontier)
/// masked by the complement of visited). The multiply itself runs
/// unmasked (output positions are unknown until computed); the fusion
/// saves the intermediate vector materialization and the second merge
/// pass of mask(tile_spmspv(...), m).
template <typename T>
SparseVec<T> tile_spmspv_masked(const TileMatrix<T>& a,
                                const TileVector<T>& x,
                                const std::vector<bool>& mask_dense,
                                bool complement, SpmspvWorkspace<T>& ws,
                                ThreadPool* pool = nullptr) {
  assert(static_cast<index_t>(mask_dense.size()) == a.rows);
  // Phases 1-2 identical to tile_spmspv; phase 3 applies the mask during
  // the gather, so masked-out values never reach the output vector.
  const index_t nt = a.nt;
  ws.ensure(a.rows, a.tile_rows);
  T* yd = ws.y_dense.data();
  unsigned char* flag = ws.tile_flag.data();

  {
    obs::TraceSpan span("spmspv/phase1_tiled", "spmspv", "masked");
    parallel_for(
        a.tile_rows,
        [&](index_t tr) {
          T acc[256];
          bool any = false;
          std::uint64_t scanned = 0, computed = 0, macs = 0;
          for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
               ++t) {
            ++scanned;
            const index_t x_offset = x.x_ptr[a.tile_col_id[t]];
            if (x_offset == kEmptyTile) continue;
            ++computed;
            macs += static_cast<std::uint64_t>(a.tile_nnz_ptr[t + 1] -
                                               a.tile_nnz_ptr[t]);
            const T* xt = &x.x_tile[static_cast<std::size_t>(x_offset) * nt];
            if (!any) {
              for (index_t i = 0; i < nt; ++i) acc[i] = T{};
              any = true;
            }
            const std::uint16_t* p = &a.intra_row_ptr[t * (nt + 1)];
            const offset_t base = a.tile_nnz_ptr[t];
            for (index_t lr = 0; lr < nt; ++lr) {
              T sum{};
              for (offset_t i = base + p[lr]; i < base + p[lr + 1]; ++i) {
                sum += a.vals[i] * xt[a.local_col[i]];
              }
              acc[lr] += sum;
            }
          }
          obs::counter_add(obs::Counter::kTilesScanned, scanned);
          obs::counter_add(obs::Counter::kTilesSkippedEmpty,
                           scanned - computed);
          obs::counter_add(obs::Counter::kTilesComputed, computed);
          obs::counter_add(obs::Counter::kPayloadMacs, macs);
          if (any) {
            const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
            for (index_t r = tr * nt; r < r_end; ++r) yd[r] = acc[r - tr * nt];
            flag[tr] = 1;
          }
        },
        pool, /*chunk=*/8);
  }

  if (a.extracted.nnz() > 0) {
    obs::TraceSpan span("spmspv/phase2_side", "spmspv", "masked");
    std::vector<index_t> active;
    for (index_t s = 0; s < x.num_tiles(); ++s) {
      if (x.x_ptr[s] != kEmptyTile) active.push_back(s);
    }
    parallel_for(
        static_cast<index_t>(active.size()),
        [&](index_t ai) {
          const index_t s = active[ai];
          const T* xt = &x.x_tile[static_cast<std::size_t>(x.x_ptr[s]) * nt];
          std::uint64_t side = 0;
          for (index_t lj = 0; lj < nt; ++lj) {
            const index_t j = s * nt + lj;
            if (j >= a.cols) break;
            const T xv = xt[lj];
            if (xv == T{}) continue;
            side += static_cast<std::uint64_t>(a.side_col_ptr[j + 1] -
                                               a.side_col_ptr[j]);
            for (offset_t i = a.side_col_ptr[j]; i < a.side_col_ptr[j + 1];
                 ++i) {
              const index_t r = a.side_row_idx[i];
              atomic_add(&yd[r], a.side_vals[i] * xv);
              atomic_or<unsigned char>(&flag[r / nt], 1);
            }
          }
          obs::counter_add(obs::Counter::kSideMacs, side);
        },
        pool, /*chunk=*/16);
  }

  obs::TraceSpan span("spmspv/phase3_gather", "spmspv", "masked");
  obs::counter_add(obs::Counter::kGatherSlots,
                   static_cast<std::uint64_t>(a.tile_rows));
  SparseVec<T> y(a.rows);
  for (index_t tr = 0; tr < a.tile_rows; ++tr) {
    if (!flag[tr]) continue;
    flag[tr] = 0;
    const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
    for (index_t r = tr * nt; r < r_end; ++r) {
      if (yd[r] != T{} && mask_dense[r] != complement) y.push(r, yd[r]);
      yd[r] = T{};
    }
  }
  return y;
}

}  // namespace tilespmspv
