// Tiled multi-source BFS: the bit-parallel MS-BFS technique (one bit per
// source, up to 64 sources) running over the paper's bitmask tile
// structure instead of plain CSR. Edge scans go tile by tile — each
// non-empty tile's row masks drive the per-source word merges, so the
// batch shares both the edge traversal (MS-BFS's win) and the tiled
// locality (the paper's win). The extracted very-sparse part is expanded
// through the source-indexed side list, as in single-source TileBFS.
#pragma once

#include <bit>
#include <stdexcept>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/bit_tile_graph.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct TileMsBfsResult {
  std::vector<std::vector<index_t>> levels;  // [source][vertex]
  int rounds = 0;
};

/// Runs up to 64 sources over a prebuilt BitTileGraph<NT>.
template <int NT>
TileMsBfsResult tile_ms_bfs(const BitTileGraph<NT>& g,
                            const std::vector<index_t>& sources,
                            ThreadPool* pool = nullptr) {
  using Word = bitword_t<NT>;
  const int k = static_cast<int>(sources.size());
  TileMsBfsResult out;
  out.levels.assign(k, std::vector<index_t>(g.n, -1));
  if (k == 0) return out;
  if (k > 64) {
    throw std::invalid_argument("tile_ms_bfs: at most 64 sources per batch");
  }

  // Per-vertex source words.
  std::vector<std::uint64_t> seen(g.n, 0);
  std::vector<std::uint64_t> visit(g.n, 0);
  std::vector<std::uint64_t> next(g.n, 0);
  // Per-tile-slot frontier occupancy so empty tile columns are skipped
  // without touching the per-vertex words.
  std::vector<Word> frontier_tiles(g.tile_n, 0);

  for (int s = 0; s < k; ++s) {
    const index_t src = sources[s];
    seen[src] |= std::uint64_t{1} << s;
    visit[src] |= std::uint64_t{1} << s;
    frontier_tiles[src / NT] |= msb_bit<Word>(src % NT);
    out.levels[s][src] = 0;
  }

  bool frontier_nonempty = true;
  for (index_t level = 1; frontier_nonempty; ++level) {
    ++out.rounds;
    // Expand tile rows: for tile (tr, tc), local row lr gains the union
    // of visit words of the frontier vertices among its neighbors in tc.
    parallel_for(
        g.tile_n,
        [&](index_t tr) {
          for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1];
               ++t) {
            const index_t tc = g.csr_tile_col[t];
            const Word active = frontier_tiles[tc];
            if (active == 0) continue;
            const Word* row_masks =
                &g.csr_masks[static_cast<std::size_t>(t) * NT];
            for_each_set_bit(
                g.csr_row_summary[t], [&](int lr) {
                  const Word hits = row_masks[lr] & active;
                  if (hits == 0) return;
                  const index_t v = tr * NT + lr;
                  std::uint64_t gather = 0;
                  for_each_set_bit(hits, [&](int lc) {
                    gather |= visit[tc * NT + lc];
                  });
                  const std::uint64_t fresh = gather & ~seen[v];
                  if (fresh != 0) next[v] |= fresh;  // tile row owned by task
                });
          }
        },
        pool, /*chunk=*/16);
    // Extracted side edges (frontier-driven).
    if (!g.side_dst.empty()) {
      parallel_for(
          g.tile_n,
          [&](index_t s_tile) {
            const Word fw = frontier_tiles[s_tile];
            if (fw == 0) return;
            for_each_set_bit(fw, [&](int b) {
              const index_t u = s_tile * NT + b;
              const std::uint64_t w = visit[u];
              for (offset_t e = g.side_ptr[u]; e < g.side_ptr[u + 1]; ++e) {
                const index_t dst = g.side_dst[e];
                const std::uint64_t fresh = w & ~atomic_load(&seen[dst]);
                if (fresh != 0) atomic_or(&next[dst], fresh);
              }
            });
          },
          pool, /*chunk=*/32);
    }

    // Fold: commit discoveries, rebuild the frontier structures.
    frontier_nonempty = false;
    std::fill(frontier_tiles.begin(), frontier_tiles.end(), Word{0});
    for (index_t v = 0; v < g.n; ++v) {
      const std::uint64_t fresh = next[v] & ~seen[v];
      next[v] = 0;
      if (fresh == 0) {
        visit[v] = 0;
        continue;
      }
      seen[v] |= fresh;
      visit[v] = fresh;
      frontier_tiles[v / NT] |= msb_bit<Word>(v % NT);
      frontier_nonempty = true;
      std::uint64_t bits = fresh;
      while (bits != 0) {
        const int s = std::countr_zero(bits);
        bits &= bits - 1;
        out.levels[s][v] = level;
      }
    }
  }
  return out;
}

/// Convenience overload building the tile structure (NT = 32) first.
template <typename T>
TileMsBfsResult tile_ms_bfs(const Csr<T>& a,
                            const std::vector<index_t>& sources,
                            index_t extract_threshold = 2,
                            ThreadPool* pool = nullptr) {
  const auto g = BitTileGraph<32>::from_csr(a, extract_threshold);
  return tile_ms_bfs(g, sources, pool);
}

}  // namespace tilespmspv
