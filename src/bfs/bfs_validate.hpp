// BFS tree construction and validation in the Graph500 style. TileBFS
// (like the paper) produces levels; many consumers want parent pointers,
// and benchmark methodology requires validating that a claimed traversal
// really is a BFS tree of the input graph. Both utilities work for any
// of the repo's BFS implementations.
#pragma once

#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Derives parent pointers from a level array: parent[v] is some
/// in-neighbor of v at level[v]-1 (the smallest-id one, making the result
/// deterministic). `a` uses the adjacency convention A[v][u] = edge
/// u -> v, so row v lists the in-neighbors of v. parent[source] = source;
/// unreachable vertices get -1.
template <typename T>
std::vector<index_t> bfs_parents(const Csr<T>& a,
                                 const std::vector<index_t>& levels,
                                 index_t source,
                                 ThreadPool* pool = nullptr) {
  std::vector<index_t> parents(a.rows, -1);
  parents[source] = source;
  parallel_for(
      a.rows,
      [&](index_t v) {
        if (levels[v] <= 0) return;  // source or unreachable
        for (offset_t i = a.row_ptr[v]; i < a.row_ptr[v + 1]; ++i) {
          const index_t u = a.col_idx[i];
          if (levels[u] == levels[v] - 1) {
            parents[v] = u;
            return;  // columns are sorted, so this is the smallest id
          }
        }
      },
      pool, /*chunk=*/128);
  return parents;
}

/// Graph500-style validation of (levels, parents) against the graph.
/// Checks:
///   1. level[source] == 0 and parent[source] == source;
///   2. visited <=> has parent; unreachable <=> level == -1;
///   3. every non-source parent is a real in-neighbor one level up;
///   4. every edge spans at most one level (no shortcut missed) — this
///      requires `symmetric_levels` (undirected graphs); for directed
///      graphs only the weaker check level[v] <= level[u] + 1 per edge
///      u -> v applies.
/// On failure returns false and writes a diagnostic to `error`.
template <typename T>
bool validate_bfs(const Csr<T>& a, index_t source,
                  const std::vector<index_t>& levels,
                  const std::vector<index_t>& parents, std::string* error,
                  bool symmetric_levels = true) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (static_cast<index_t>(levels.size()) != a.rows ||
      static_cast<index_t>(parents.size()) != a.rows) {
    return fail("size mismatch");
  }
  if (levels[source] != 0) return fail("source level != 0");
  if (parents[source] != source) return fail("source parent != source");
  for (index_t v = 0; v < a.rows; ++v) {
    if ((levels[v] < 0) != (parents[v] < 0)) {
      return fail("level/parent visited disagreement at " +
                  std::to_string(v));
    }
    if (levels[v] > 0) {
      const index_t p = parents[v];
      if (p < 0 || p >= a.rows || levels[p] != levels[v] - 1) {
        return fail("bad parent level at " + std::to_string(v));
      }
      bool edge = false;
      for (offset_t i = a.row_ptr[v]; i < a.row_ptr[v + 1]; ++i) {
        if (a.col_idx[i] == p) edge = true;
      }
      if (!edge) return fail("parent not a neighbor at " + std::to_string(v));
    }
  }
  // Edge-level consistency: for edge u -> v (A[v][u]), v must be found no
  // later than one step after u.
  for (index_t v = 0; v < a.rows; ++v) {
    for (offset_t i = a.row_ptr[v]; i < a.row_ptr[v + 1]; ++i) {
      const index_t u = a.col_idx[i];
      if (levels[u] >= 0) {
        if (levels[v] < 0 || levels[v] > levels[u] + 1) {
          return fail("missed shortcut on edge " + std::to_string(u) +
                      " -> " + std::to_string(v));
        }
      }
      if (symmetric_levels && levels[v] >= 0 && levels[u] >= 0 &&
          std::abs(levels[v] - levels[u]) > 1) {
        return fail("edge spans more than one level");
      }
    }
  }
  return true;
}

}  // namespace tilespmspv
