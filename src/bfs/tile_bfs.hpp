// TileBFS (paper §3.4): direction-optimizing BFS over the bitmask tiled
// adjacency structure, with three kernels selected per iteration:
//
//   K1 Push-CSC — frontier-driven column merge (Alg. 5); chosen when the
//      frontier density is below `push_csr_sparsity` and many vertices are
//      still unvisited.
//   K2 Push-CSR — matrix-driven row AND/OR (Alg. 6); chosen when the
//      frontier density is at least `push_csr_sparsity`.
//   K3 Pull-CSC — unvisited-driven pull with early exit (Alg. 7); chosen
//      when few unvisited vertices remain.
//
// The tile size follows the paper's rule: order > 10,000 -> 64×64 tiles,
// otherwise 32×32 (§3.4). Very sparse tiles are extracted to an edge list
// traversed by a separate edge-parallel pass each iteration (the paper
// delegates that part to GSwitch; the pass here implements the equivalent
// frontier expansion directly and merges into the same output vector).
//
// Directed-graph note: the paper stores the CSC form A1 and, for undirected
// graphs, observes A1 == A2. Our pull kernel reads the row-oriented masks
// (in-neighbor direction), which coincides with the paper's column masks on
// undirected inputs and stays correct on directed ones.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace tilespmspv {

enum class BfsKernel { kPushCsc, kPushCsr, kPullCsc };

const char* bfs_kernel_name(BfsKernel k);

struct TileBfsConfig {
  /// Frontier density at or above which Push-CSR replaces Push-CSC
  /// (paper: 0.01).
  double push_csr_sparsity = 0.01;
  /// Additional Push-CSR guard: the frontier must also occupy at least
  /// this fraction of the tile words. Push-CSR sweeps every stored tile,
  /// which a GPU hides behind parallelism but a CPU pays serially; when
  /// the frontier is dense-but-clustered (band matrices), the
  /// vector-driven Push-CSC remains work-proportional and faster.
  double push_csr_frontier_words_frac = 0.5;
  /// Unvisited fraction at or below which Pull-CSC takes over ("the number
  /// of unvisited vertices is small").
  double pull_unvisited_frac = 0.1;
  /// Additional pull guard: Pull-CSC is only chosen while the unvisited
  /// set is at most this many times the frontier (pull scans unvisited
  /// vertices; push scans frontier edges — on long-diameter graphs with
  /// tiny frontiers, pulling for hundreds of tail iterations would be
  /// pathological). This is the direction-switch advantage test of Beamer
  /// et al., which the paper's prose rule ("number of unvisited vertices
  /// is small") leaves implicit.
  double pull_frontier_factor = 2.0;
  /// Kernel-enable bitmask for the Fig. 9 ablation: bit0 = K1 Push-CSC,
  /// bit1 = K2 Push-CSR, bit2 = K3 Pull-CSC. At least one bit must be set.
  unsigned kernel_mask = 7;
  /// Tiles with at most this many edges are extracted to the side edge
  /// list (0 disables extraction).
  index_t extract_threshold = 2;
  /// Matrix order above which 64×64 tiles are used instead of 32×32.
  index_t order_threshold = 10000;
  /// Overrides the order rule with a fixed tile size (16, 32 or 64); 0
  /// keeps the automatic rule. Exists for the differential fuzz harness,
  /// which exercises every word width against the serial reference.
  int forced_tile_size = 0;
  /// Record one BfsIterationLog per iteration (kernel choice plus the
  /// frontier-density / unvisited-fraction inputs the selector saw). The
  /// Fig. 9/10 harnesses and --verbose/--json CLI output consume these;
  /// switch off for production queries that only need levels.
  bool record_iterations = true;
};

struct BfsIterationLog {
  int level = 0;
  BfsKernel kernel = BfsKernel::kPushCsc;
  index_t frontier_size = 0;      // |x| entering the iteration
  index_t unvisited = 0;          // n - |m| entering the iteration
  double frontier_density = 0.0;  // |x| / n, the selector's K2 input
  double unvisited_frac = 0.0;    // unvisited / n, the selector's K3 input
  double ms = 0.0;
  // Non-empty frontier words entering the iteration — the selector's
  // second K2 input (frontier_words_frac guard). Carried incrementally
  // from the previous level's produced-word tally, never re-scanned.
  index_t frontier_words = 0;
};

struct BfsResult {
  std::vector<index_t> levels;  // per-vertex BFS level, -1 if unreachable
  std::vector<BfsIterationLog> iterations;
  double total_ms = 0.0;

  index_t visited_count() const {
    index_t c = 0;
    for (index_t l : levels) {
      if (l >= 0) ++c;
    }
    return c;
  }
};

/// Hoisted per-query scratch (frontier bit vectors, slot lists, chunk
/// boundaries, produced-slot buckets), mirroring SpmspvWorkspace: create
/// once, pass to TileBfs::run repeatedly, and steady-state BFS levels
/// allocate nothing. A workspace adapts to whatever graph size / tile
/// size it is used with, but must not be shared by concurrent runs. The
/// contents are an implementation detail of the BFS engine.
class BfsWorkspace {
 public:
  BfsWorkspace();
  ~BfsWorkspace();
  BfsWorkspace(BfsWorkspace&&) noexcept;
  BfsWorkspace& operator=(BfsWorkspace&&) noexcept;

 private:
  friend class TileBfs;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Preprocesses a square adjacency matrix once (tiling + bitmask build) and
/// answers BFS queries from arbitrary sources.
class TileBfs {
 public:
  TileBfs(const Csr<value_t>& a, TileBfsConfig cfg = {},
          ThreadPool* pool = nullptr);

  /// Zero-copy load of a pre-converted graph tile file (see
  /// formats/tile_file.hpp and `tilespmspv_cli convert --graph`): the mask
  /// arrays stay mmapped, the tile size comes from the file header (must
  /// be 16, 32 or 64), and cfg's tiling knobs (extract_threshold,
  /// forced_tile_size, order_threshold) are ignored — they were baked in
  /// at conversion time. preprocess_ms() then measures the map + validate
  /// cost, which is what the ≥10x load-speedup claim compares against
  /// from_csr conversion.
  explicit TileBfs(const std::string& graph_path, TileBfsConfig cfg = {},
                   ThreadPool* pool = nullptr);

  ~TileBfs();
  TileBfs(TileBfs&&) noexcept;
  TileBfs& operator=(TileBfs&&) noexcept;

  /// One-shot query: creates a fresh workspace internally (thread-safe for
  /// concurrent calls on the same TileBfs).
  BfsResult run(index_t source) const;

  /// Steady-state query: reuses `ws` so repeated traversals allocate only
  /// the result vector. Not thread-safe with respect to `ws`.
  BfsResult run(index_t source, BfsWorkspace& ws) const;

  /// Tile size selected by the order rule (32 or 64).
  int tile_size() const;
  /// Number of edges (nnz) including the extracted part.
  offset_t edges() const;
  /// Number of stored (non-extracted) tiles.
  index_t num_tiles() const;
  /// Edges extracted into the side list.
  offset_t side_edge_count() const;
  /// Wall time of the preprocessing (format conversion), for Fig. 11.
  double preprocess_ms() const { return preprocess_ms_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  double preprocess_ms_ = 0.0;
};

}  // namespace tilespmspv
