#include "bfs/tile_bfs.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "formats/tile_file.hpp"
#include "obs/counters.hpp"
#include "obs/shard_stats.hpp"
#include "obs/trace.hpp"
#include "parallel/arena.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/bit_vector.hpp"
#include "tile/tile_chunks.hpp"
#include "util/bitkernels.hpp"
#include "util/timer.hpp"

namespace tilespmspv {

const char* bfs_kernel_name(BfsKernel k) {
  switch (k) {
    case BfsKernel::kPushCsc:
      return "Push-CSC";
    case BfsKernel::kPushCsr:
      return "Push-CSR";
    case BfsKernel::kPullCsc:
      return "Pull-CSC";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// Hoisted per-query scratch. All BFS state a level touches lives here so
// steady-state levels allocate nothing (mirrors SpmspvWorkspace).
//
// Invariants between runs (and between levels, where noted):
//   - x and y are all-zero (restored sparsely through the slot lists);
//   - slot_flag is all-zero (cleared while merging produced slots);
//   - the produced buckets are empty;
// only the visited mask m is dense state, cleared once per run.
// ---------------------------------------------------------------------
template <int NT>
struct BfsScratch {
  BitVector<NT> x;  // current frontier
  BitVector<NT> m;  // visited mask (includes the frontier)
  BitVector<NT> y;  // next frontier
  std::vector<index_t> slots;       // non-empty word slots of x
  std::vector<index_t> next_slots;  // non-empty word slots of y
  // Output-word registration: slot_flag[s] is set the first time a kernel
  // produces bits in y.words[s]; the producing task appends s to its pool
  // slot's bucket, so the merged buckets list every produced word exactly
  // once without any re-scan of y.
  std::vector<std::uint8_t> slot_flag;
  std::vector<std::vector<index_t>> produced;  // one bucket per pool slot
  // Reused weighted-chunk boundaries (Push-CSC frontier slots, side pass).
  std::vector<index_t> k1_bounds;
  std::vector<index_t> side_bounds;

  // Cached shard partition of the matrix-driven chunk list (NUMA-sharded
  // pools): rebuilt when the chunk list identity or shard count changes.
  std::vector<index_t> shard_bounds;
  std::vector<std::uint64_t> shard_bytes;
  const index_t* shard_key = nullptr;
  int shard_ns = 0;

  void ensure(index_t n, std::size_t pool_slots) {
    if (x.n != n) {
      x = BitVector<NT>(n);
      m = BitVector<NT>(n);
      y = BitVector<NT>(n);
      slot_flag.assign(x.words.size(), 0);
      slots.clear();
      next_slots.clear();
    }
    if (produced.size() < pool_slots) produced.resize(pool_slots);
  }
};

/// Local-row count at or above which the per-tile inner test switches from
/// the bit-scan loop to the full-block SIMD mask intersection
/// (and_broadcast_hits evaluates all NT rows at once, so it pays off only
/// when enough candidate rows remain). Both paths compute the same word.
template <int NT>
inline constexpr int kHitsKernelThreshold = NT / 8;

// ---------------------------------------------------------------------
// K1: Push-CSC (paper Alg. 5). Vector-driven: every non-empty frontier
// word walks its tile column in the CSC form; the OR of the column masks
// of its set bits is the contribution to the output tile row, masked by
// the visited vector and merged with an atomic OR (several frontier tiles
// can hit the same output tile row). Frontier slots are cut into chunks
// of roughly equal column weight (conversion-time csc_col_weight), so one
// hub column cannot serialize the level.
// ---------------------------------------------------------------------
template <int NT>
void kernel_push_csc(const BitTileGraph<NT>& g, BfsScratch<NT>& ws,
                     ThreadPool* pool) {
  using Word = bitword_t<NT>;
  const std::vector<index_t>& slots = ws.slots;
  build_weighted_chunks_into(
      ws.k1_bounds, static_cast<index_t>(slots.size()), kChunkTargetWork,
      [&](index_t i) {
        return g.csc_col_weight.empty()
                   ? kChunkTargetWork / 4  // hand-built graph: 4-slot chunks
                   : g.csc_col_weight[slots[i]];
      });
  parallel_for(
      static_cast<index_t>(ws.k1_bounds.size()) - 1,
      [&](index_t c) {
        std::vector<index_t>& out_slots =
            ws.produced[static_cast<std::size_t>(ThreadPool::scratch_slot())];
        std::uint64_t tiles_visited = 0;
        for (index_t si = ws.k1_bounds[c]; si < ws.k1_bounds[c + 1]; ++si) {
          const index_t s = slots[si];
          const Word xw = ws.x.words[s];
          for (offset_t t = g.csc_tile_ptr[s]; t < g.csc_tile_ptr[s + 1];
               ++t) {
            // Only columns that are both in the frontier and non-empty in
            // this tile contribute; the summary check skips the payload
            // for tiles untouched by the frontier.
            const Word summary = g.csc_col_summary[t];
            const Word active = xw & summary;
            if (active == 0) continue;
            ++tiles_visited;
            const index_t blk_y_rowid = g.csc_tile_row[t];
            const Word* col_masks = g.csc_mask(t);
            Word contrib = 0;
            if (active == summary && popcount(active) >= NT / 4) {
              // Every non-empty column of this reasonably dense tile is
              // in the frontier: the merge is a straight OR over the mask
              // block (SIMD). The density gate matters — or_reduce reads
              // all NT words, so on near-empty tiles the per-set-bit loop
              // below is cheaper.
              contrib = bitk::or_reduce(col_masks, NT);
            } else {
              for_each_set_bit(active,
                               [&](int lj) { contrib |= col_masks[lj]; });
            }
            const Word sum =
                contrib & static_cast<Word>(~ws.m.words[blk_y_rowid]);
            if (sum != 0) {
              atomic_or(&ws.y.words[blk_y_rowid], sum);
              if (!atomic_test_and_set(&ws.slot_flag[blk_y_rowid])) {
                out_slots.push_back(blk_y_rowid);
              }
            }
          }
        }
        obs::counter_add(obs::Counter::kBfsTilesVisited, tiles_visited);
      },
      pool, /*chunk=*/1);
}

/// Matrix-driven dispatch boundaries: the conversion-time weighted chunks
/// when present, a uniform fallback for hand-built graphs.
template <int NT>
const std::vector<index_t>& csr_bounds(const BitTileGraph<NT>& g,
                                       std::vector<index_t>& fallback) {
  if (g.csr_chunk_ptr.size() >= 2) return g.csr_chunk_ptr;
  fallback = uniform_row_chunks(g.tile_n, 16);
  return fallback;
}

/// Shard partition of the matrix-driven chunk list for a NUMA-sharded
/// pool, weighted by mask payload bytes per chunk (see the SpMSpV
/// equivalent in core/tile_spmspv.hpp). Cached in the scratch; publishes
/// per-shard byte totals to the shard counters.
template <int NT>
const std::vector<index_t>& csr_shard_bounds(
    const BitTileGraph<NT>& g, BfsScratch<NT>& ws,
    const std::vector<index_t>& bounds, int ns) {
  using Word = bitword_t<NT>;
  const auto nchunks = static_cast<index_t>(bounds.size()) - 1;
  const index_t* key = bounds.data();
  if (ws.shard_key != key || ws.shard_ns != ns || ws.shard_bounds.empty() ||
      ws.shard_bounds.back() != nchunks) {
    ShardPlan plan = make_shard_plan(nchunks, ns, [&](index_t c) {
      const offset_t t0 = g.csr_tile_ptr[bounds[c]];
      const offset_t t1 = g.csr_tile_ptr[bounds[c + 1]];
      return std::uint64_t{1} +
             static_cast<std::uint64_t>(t1 - t0) *
                 (static_cast<std::size_t>(NT) * sizeof(Word) +
                  sizeof(index_t) + sizeof(Word));
    });
    ws.shard_bounds = std::move(plan.chunk_bounds);
    ws.shard_bytes = std::move(plan.bytes);
    ws.shard_key = key;
    ws.shard_ns = ns;
  }
  for (int s = 0; s < ns; ++s) {
    obs::shard_set_bytes(s, ws.shard_bytes[static_cast<std::size_t>(s)]);
  }
  return ws.shard_bounds;
}

/// Dispatches chunk_body over [0, nchunks): shard-aware when the pool is
/// NUMA-sharded, the plain claim loop otherwise.
template <int NT, typename Body>
void dispatch_csr_chunks(const BitTileGraph<NT>& g, BfsScratch<NT>& ws,
                         const std::vector<index_t>& bounds, ThreadPool* pool,
                         Body&& chunk_body) {
  const auto nchunks = static_cast<index_t>(bounds.size()) - 1;
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  if (p.num_shards() > 1 && nchunks > 1) {
    const std::vector<index_t>& sb =
        csr_shard_bounds(g, ws, bounds, p.num_shards());
    p.parallel_shard_ranges(sb, 1, [&](index_t begin, index_t end) {
      for (index_t c = begin; c < end; ++c) chunk_body(c);
    });
  } else {
    parallel_for(nchunks, chunk_body, pool, /*chunk=*/1);
  }
}

// ---------------------------------------------------------------------
// K2: Push-CSR (paper Alg. 6). Matrix-driven: one task per tile row; every
// tile whose frontier word is non-empty tests each still-unvisited local
// row against the frontier word (AND) and accumulates hits (OR). No
// atomics: each tile row is owned by exactly one task.
// ---------------------------------------------------------------------
template <int NT>
void kernel_push_csr(const BitTileGraph<NT>& g, BfsScratch<NT>& ws,
                     ThreadPool* pool) {
  using Word = bitword_t<NT>;
  std::vector<index_t> fallback;
  const std::vector<index_t>& bounds = csr_bounds(g, fallback);
  dispatch_csr_chunks(
      g, ws, bounds, pool,
      [&](index_t c) {
        std::vector<index_t>& out_slots =
            ws.produced[static_cast<std::size_t>(ThreadPool::scratch_slot())];
        std::uint64_t tiles_visited = 0;
        for (index_t tr = bounds[c]; tr < bounds[c + 1]; ++tr) {
          const Word unvisited =
              static_cast<Word>(~ws.m.words[tr]) & ws.m.valid_mask(tr);
          if (unvisited == 0) continue;  // whole tile row already done
          Word out = 0;
          for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1];
               ++t) {
            const Word xw = ws.x.words[g.csr_tile_col[t]];
            if (xw == 0) continue;  // empty frontier tile: skip payload
            // Restrict to rows that are unvisited, not already found, and
            // actually present in this tile (summary word).
            const Word remaining =
                unvisited & static_cast<Word>(~out) & g.csr_row_summary[t];
            if (remaining == 0) continue;
            ++tiles_visited;
            const Word* row_masks =
                &g.csr_masks[static_cast<std::size_t>(t) * NT];
            if (popcount(remaining) >= kHitsKernelThreshold<NT>) {
              out |= static_cast<Word>(bitk::and_broadcast_hits(row_masks, xw) &
                                       remaining);
            } else {
              for_each_set_bit(remaining, [&](int lr) {
                if (row_masks[lr] & xw) out |= msb_bit<Word>(lr);
              });
            }
          }
          if (out != 0) {
            ws.y.words[tr] |= out;
            // Tile row tr is owned by this task and the side pass has not
            // started: a plain flag write registers the produced word.
            ws.slot_flag[tr] = 1;
            out_slots.push_back(tr);
          }
        }
        obs::counter_add(obs::Counter::kBfsTilesVisited, tiles_visited);
        obs::shard_add_tiles(ThreadPool::current_shard(), tiles_visited);
      });
}

// ---------------------------------------------------------------------
// K3: Pull-CSC (paper Alg. 7). Unvisited-driven: each still-unvisited
// vertex scans its in-neighborhood masks against the visited vector and
// stops at the first hit (the paper's warp-synchronized early exit).
// Reads the row-oriented masks; identical to the paper's A1 columns on
// undirected graphs (see header note).
// ---------------------------------------------------------------------
template <int NT>
void kernel_pull_csc(const BitTileGraph<NT>& g, BfsScratch<NT>& ws,
                     ThreadPool* pool) {
  using Word = bitword_t<NT>;
  std::vector<index_t> fallback;
  const std::vector<index_t>& bounds = csr_bounds(g, fallback);
  dispatch_csr_chunks(
      g, ws, bounds, pool,
      [&](index_t c) {
        std::vector<index_t>& out_slots =
            ws.produced[static_cast<std::size_t>(ThreadPool::scratch_slot())];
        std::uint64_t tiles_visited = 0;
        for (index_t tr = bounds[c]; tr < bounds[c + 1]; ++tr) {
          Word remaining =
              static_cast<Word>(~ws.m.words[tr]) & ws.m.valid_mask(tr);
          if (remaining == 0) continue;
          Word out = 0;
          for (offset_t t = g.csr_tile_ptr[tr];
               t < g.csr_tile_ptr[tr + 1] && remaining != 0; ++t) {
            const Word mw = ws.m.words[g.csr_tile_col[t]];
            if (mw == 0) continue;
            const Word cand = remaining & g.csr_row_summary[t];
            if (cand == 0) continue;
            ++tiles_visited;
            const Word* row_masks =
                &g.csr_masks[static_cast<std::size_t>(t) * NT];
            Word found;
            if (popcount(cand) >= kHitsKernelThreshold<NT>) {
              found = bitk::and_broadcast_hits(row_masks, mw) & cand;
            } else {
              found = 0;
              for_each_set_bit(cand, [&](int lu) {
                if (row_masks[lu] & mw) found |= msb_bit<Word>(lu);
              });
            }
            out |= found;
            remaining &= static_cast<Word>(~found);  // early exit per vertex
          }
          if (out != 0) {
            ws.y.words[tr] |= out;
            ws.slot_flag[tr] = 1;
            out_slots.push_back(tr);
          }
        }
        obs::counter_add(obs::Counter::kBfsTilesVisited, tiles_visited);
        obs::shard_add_tiles(ThreadPool::current_shard(), tiles_visited);
      });
}

// ---------------------------------------------------------------------
// Side pass for the extracted very-sparse part: frontier-driven expansion
// over the source-indexed edge list, merged into the same output vector.
// Walks the frontier slot list (not every x word) and chunks it by side
// degree, so both the scan and the schedule cost are proportional to the
// frontier's extracted out-edges rather than to the whole vector.
// ---------------------------------------------------------------------
template <int NT>
void side_edges_pass(const BitTileGraph<NT>& g, BfsScratch<NT>& ws,
                     ThreadPool* pool) {
  using Word = bitword_t<NT>;
  if (g.side_dst.empty()) return;
  const std::vector<index_t>& slots = ws.slots;
  build_weighted_chunks_into(
      ws.side_bounds, static_cast<index_t>(slots.size()), kChunkTargetWork,
      [&](index_t i) {
        const index_t lo = slots[i] * NT;
        const index_t hi = std::min<index_t>(lo + NT, g.n);
        return offset_t{1} + g.side_ptr[hi] - g.side_ptr[lo];
      });
  parallel_for(
      static_cast<index_t>(ws.side_bounds.size()) - 1,
      [&](index_t c) {
        std::vector<index_t>& out_slots =
            ws.produced[static_cast<std::size_t>(ThreadPool::scratch_slot())];
        std::uint64_t relaxed = 0;
        for (index_t si = ws.side_bounds[c]; si < ws.side_bounds[c + 1];
             ++si) {
          const index_t s = slots[si];
          const Word xw = ws.x.words[s];
          for_each_set_bit(xw, [&](int b) {
            const index_t u = s * NT + b;
            relaxed +=
                static_cast<std::uint64_t>(g.side_ptr[u + 1] - g.side_ptr[u]);
            for (offset_t k = g.side_ptr[u]; k < g.side_ptr[u + 1]; ++k) {
              const index_t dst = g.side_dst[k];
              if (!ws.m.test(dst)) {
                const index_t ds = dst / NT;
                atomic_or(&ws.y.words[ds], msb_bit<Word>(dst % NT));
                if (!atomic_test_and_set(&ws.slot_flag[ds])) {
                  out_slots.push_back(ds);
                }
              }
            }
          });
        }
        obs::counter_add(obs::Counter::kBfsSideEdges, relaxed);
      },
      pool, /*chunk=*/1);
}

template <int NT>
BfsKernel select_kernel(const TileBfsConfig& cfg, index_t n,
                        index_t frontier_size, index_t frontier_words,
                        index_t total_words, index_t unvisited) {
  const bool k1 = cfg.kernel_mask & 1u;
  const bool k2 = cfg.kernel_mask & 2u;
  const bool k3 = cfg.kernel_mask & 4u;
  const double density = static_cast<double>(frontier_size) / n;
  const double unvisited_frac = static_cast<double>(unvisited) / n;
  if (k3 && unvisited_frac <= cfg.pull_unvisited_frac &&
      static_cast<double>(unvisited) <=
          cfg.pull_frontier_factor * static_cast<double>(frontier_size)) {
    return BfsKernel::kPullCsc;
  }
  if (k2 && density >= cfg.push_csr_sparsity &&
      static_cast<double>(frontier_words) >=
          cfg.push_csr_frontier_words_frac * static_cast<double>(total_words)) {
    return BfsKernel::kPushCsr;
  }
  if (k1) return BfsKernel::kPushCsc;
  if (k2) return BfsKernel::kPushCsr;
  if (k3) return BfsKernel::kPullCsc;
  throw std::invalid_argument("TileBfsConfig.kernel_mask must enable a kernel");
}

template <int NT>
BfsResult run_bfs(const BitTileGraph<NT>& g, index_t source,
                  const TileBfsConfig& cfg, ThreadPool* pool,
                  BfsScratch<NT>& ws) {
  using Word = bitword_t<NT>;
  assert(source >= 0 && source < g.n);
  Timer total;
  BfsResult result;
  result.levels.assign(g.n, -1);
  result.levels[source] = 0;

  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  ws.ensure(g.n, p.size());
  ws.m.clear();  // the one dense per-run reset; everything else is sparse
  ws.x.set(source);
  ws.m.set(source);
  ws.slots.clear();
  ws.slots.push_back(source / NT);
  index_t visited = 1;
  index_t frontier_size = 1;

  for (int level = 1;; ++level) {
    const index_t unvisited = g.n - visited;
    if (frontier_size == 0 || unvisited == 0) break;
    const auto frontier_words = static_cast<index_t>(ws.slots.size());
    const BfsKernel kernel = select_kernel<NT>(
        cfg, g.n, frontier_size, frontier_words, ws.x.num_words(), unvisited);

    Timer iter;
    obs::TraceSpan span("bfs/iteration", "bfs", bfs_kernel_name(kernel));
    obs::counter_add(obs::Counter::kBfsFrontierWords,
                     static_cast<std::uint64_t>(frontier_words));
    switch (kernel) {
      case BfsKernel::kPushCsc:
        obs::counter_add(obs::Counter::kBfsIterPushCsc, 1);
        kernel_push_csc(g, ws, pool);
        break;
      case BfsKernel::kPushCsr:
        obs::counter_add(obs::Counter::kBfsIterPushCsr, 1);
        kernel_push_csr(g, ws, pool);
        break;
      case BfsKernel::kPullCsc:
        obs::counter_add(obs::Counter::kBfsIterPullCsc, 1);
        kernel_pull_csc(g, ws, pool);
        break;
    }
    side_edges_pass(g, ws, pool);

    // Merge the produced-slot buckets into the next slot list and clear
    // the registration flags. For dense levels a SIMD scan of y rebuilds
    // the list in slot order instead (better locality downstream and
    // cheaper than touching many scattered bucket entries twice).
    ws.next_slots.clear();
    std::size_t produced_total = 0;
    for (const std::vector<index_t>& bucket : ws.produced) {
      produced_total += bucket.size();
    }
    if (produced_total >= static_cast<std::size_t>(ws.y.num_words()) / 8) {
      ws.next_slots.resize(static_cast<std::size_t>(ws.y.num_words()));
      const index_t k = bitk::collect_nonzero(
          ws.y.words.data(), ws.y.num_words(), 0, ws.next_slots.data());
      ws.next_slots.resize(static_cast<std::size_t>(k));
      for (std::vector<index_t>& bucket : ws.produced) {
        for (index_t s : bucket) ws.slot_flag[s] = 0;
        bucket.clear();
      }
    } else {
      for (std::vector<index_t>& bucket : ws.produced) {
        for (index_t s : bucket) {
          ws.slot_flag[s] = 0;
          ws.next_slots.push_back(s);
        }
        bucket.clear();
      }
    }
    const auto produced_words = static_cast<index_t>(ws.next_slots.size());
    obs::counter_add(obs::Counter::kBfsProducedWords,
                     static_cast<std::uint64_t>(produced_words));

    // Incremental level tally: assign levels and fold the new frontier
    // into the visited mask over the produced words only — no re-scan of
    // the full vectors. Slots are unique (flag-deduplicated), so chunks
    // touch disjoint words and the only shared state is the reduction sum.
    const index_t discovered = parallel_reduce<index_t>(
        produced_words, index_t{0},
        [&](index_t i) {
          const index_t s = ws.next_slots[i];
          const Word w = ws.y.words[s];
          for_each_set_bit(w,
                           [&](int b) { result.levels[s * NT + b] = level; });
          ws.m.words[s] |= w;
          return static_cast<index_t>(popcount(w));
        },
        [](index_t a, index_t b) { return a + b; }, pool, /*chunk=*/64);

    if (cfg.record_iterations) {
      BfsIterationLog log{level,
                          kernel,
                          frontier_size,
                          unvisited,
                          static_cast<double>(frontier_size) / g.n,
                          static_cast<double>(unvisited) / g.n,
                          iter.elapsed_ms(),
                          frontier_words};
      result.iterations.push_back(log);
    }
    if (discovered == 0) break;
    visited += discovered;
    frontier_size = discovered;
    // Ping-pong: y becomes the frontier; the old frontier's words (now in
    // y after the swap) are zeroed sparsely through the old slot list,
    // restoring y's all-zero invariant without a dense clear.
    std::swap(ws.x.words, ws.y.words);
    for (index_t s : ws.slots) ws.y.words[s] = 0;
    std::swap(ws.slots, ws.next_slots);
  }

  // Restore the workspace invariants for the next run: x goes back to
  // all-zero via its slot list (y and slot_flag already are).
  for (index_t s : ws.slots) ws.x.words[s] = 0;
  ws.slots.clear();
  ws.next_slots.clear();
  result.total_ms = total.elapsed_ms();
  return result;
}

}  // namespace

struct BfsWorkspace::Impl {
  BfsScratch<16> s16;
  BfsScratch<32> s32;
  BfsScratch<64> s64;

  template <int NT>
  BfsScratch<NT>& get() {
    if constexpr (NT == 16) {
      return s16;
    } else if constexpr (NT == 32) {
      return s32;
    } else {
      return s64;
    }
  }
};

BfsWorkspace::BfsWorkspace() : impl_(std::make_unique<Impl>()) {}
BfsWorkspace::~BfsWorkspace() = default;
BfsWorkspace::BfsWorkspace(BfsWorkspace&&) noexcept = default;
BfsWorkspace& BfsWorkspace::operator=(BfsWorkspace&&) noexcept = default;

struct TileBfs::Impl {
  TileBfsConfig cfg;
  ThreadPool* pool = nullptr;
  int nt = 32;
  // Exactly one of the graphs is populated, per the order rule (or the
  // forced_tile_size override).
  std::unique_ptr<BitTileGraph<16>> g16;
  std::unique_ptr<BitTileGraph<32>> g32;
  std::unique_ptr<BitTileGraph<64>> g64;
};

TileBfs::TileBfs(const Csr<value_t>& a, TileBfsConfig cfg, ThreadPool* pool)
    : impl_(std::make_unique<Impl>()) {
  if (a.rows != a.cols) {
    throw std::invalid_argument("TileBfs requires a square adjacency matrix");
  }
  if ((cfg.kernel_mask & 7u) == 0) {
    throw std::invalid_argument("TileBfsConfig.kernel_mask must enable a kernel");
  }
  const int nt = cfg.forced_tile_size != 0
                     ? cfg.forced_tile_size
                     : (a.rows > cfg.order_threshold ? 64 : 32);
  if (nt != 16 && nt != 32 && nt != 64) {
    throw std::invalid_argument(
        "TileBfsConfig.forced_tile_size must be 0, 16, 32 or 64");
  }
  impl_->cfg = cfg;
  impl_->pool = pool;
  impl_->nt = nt;
  Timer t;
  obs::TraceSpan span("bfs/preprocess", "convert");
  switch (nt) {
    case 16:
      impl_->g16 = std::make_unique<BitTileGraph<16>>(
          BitTileGraph<16>::from_csr(a, cfg.extract_threshold, true, pool));
      break;
    case 32:
      impl_->g32 = std::make_unique<BitTileGraph<32>>(
          BitTileGraph<32>::from_csr(a, cfg.extract_threshold, true, pool));
      break;
    default:
      impl_->g64 = std::make_unique<BitTileGraph<64>>(
          BitTileGraph<64>::from_csr(a, cfg.extract_threshold, true, pool));
      break;
  }
  preprocess_ms_ = t.elapsed_ms();
}

TileBfs::TileBfs(const std::string& graph_path, TileBfsConfig cfg,
                 ThreadPool* pool)
    : impl_(std::make_unique<Impl>()) {
  if ((cfg.kernel_mask & 7u) == 0) {
    throw std::invalid_argument("TileBfsConfig.kernel_mask must enable a kernel");
  }
  const TileFileHeader header = read_tile_file_header(graph_path);
  if (header.kind != static_cast<std::uint32_t>(TileFileKind::kBitTileGraph)) {
    throw std::invalid_argument("TileBfs: " + graph_path +
                                " is not a graph tile file");
  }
  impl_->cfg = cfg;
  impl_->pool = pool;
  impl_->nt = static_cast<int>(header.nt);
  Timer t;
  obs::TraceSpan span("bfs/map_graph", "convert");
  switch (header.nt) {
    case 16:
      impl_->g16 = std::make_unique<BitTileGraph<16>>(
          map_bit_tile_graph_file<16>(graph_path));
      break;
    case 32:
      impl_->g32 = std::make_unique<BitTileGraph<32>>(
          map_bit_tile_graph_file<32>(graph_path));
      break;
    case 64:
      impl_->g64 = std::make_unique<BitTileGraph<64>>(
          map_bit_tile_graph_file<64>(graph_path));
      break;
    default:
      throw std::invalid_argument("TileBfs: unsupported graph tile size " +
                                  std::to_string(header.nt));
  }
  preprocess_ms_ = t.elapsed_ms();
}

TileBfs::~TileBfs() = default;
TileBfs::TileBfs(TileBfs&&) noexcept = default;
TileBfs& TileBfs::operator=(TileBfs&&) noexcept = default;

BfsResult TileBfs::run(index_t source) const {
  BfsWorkspace ws;
  return run(source, ws);
}

BfsResult TileBfs::run(index_t source, BfsWorkspace& ws) const {
  if (impl_->g64) {
    return run_bfs(*impl_->g64, source, impl_->cfg, impl_->pool,
                   ws.impl_->get<64>());
  }
  if (impl_->g32) {
    return run_bfs(*impl_->g32, source, impl_->cfg, impl_->pool,
                   ws.impl_->get<32>());
  }
  return run_bfs(*impl_->g16, source, impl_->cfg, impl_->pool,
                 ws.impl_->get<16>());
}

int TileBfs::tile_size() const { return impl_->nt; }

offset_t TileBfs::edges() const {
  if (impl_->g64) return impl_->g64->edges;
  if (impl_->g32) return impl_->g32->edges;
  return impl_->g16->edges;
}

index_t TileBfs::num_tiles() const {
  if (impl_->g64) return impl_->g64->num_tiles();
  if (impl_->g32) return impl_->g32->num_tiles();
  return impl_->g16->num_tiles();
}

offset_t TileBfs::side_edge_count() const {
  if (impl_->g64) return impl_->g64->side_edge_count();
  if (impl_->g32) return impl_->g32->side_edge_count();
  return impl_->g16->side_edge_count();
}

}  // namespace tilespmspv
