#include "bfs/tile_bfs.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/bit_vector.hpp"
#include "util/timer.hpp"

namespace tilespmspv {

const char* bfs_kernel_name(BfsKernel k) {
  switch (k) {
    case BfsKernel::kPushCsc:
      return "Push-CSC";
    case BfsKernel::kPushCsr:
      return "Push-CSR";
    case BfsKernel::kPullCsc:
      return "Pull-CSC";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// K1: Push-CSC (paper Alg. 5). Vector-driven: every non-empty frontier
// word walks its tile column in the CSC form; the OR of the column masks
// of its set bits is the contribution to the output tile row, masked by
// the visited vector and merged with an atomic OR (several frontier tiles
// can hit the same output tile row).
// ---------------------------------------------------------------------
template <int NT>
void kernel_push_csc(const BitTileGraph<NT>& g, const BitVector<NT>& x,
                     const BitVector<NT>& m, BitVector<NT>& y,
                     const std::vector<index_t>& slots, ThreadPool* pool) {
  using Word = bitword_t<NT>;
  parallel_for(
      static_cast<index_t>(slots.size()),
      [&](index_t si) {
        const index_t s = slots[si];
        const Word xw = x.words[s];
        for (offset_t t = g.csc_tile_ptr[s]; t < g.csc_tile_ptr[s + 1]; ++t) {
          // Only columns that are both in the frontier and non-empty in
          // this tile contribute; the summary check skips the payload for
          // tiles untouched by the frontier.
          const Word active = xw & g.csc_col_summary[t];
          if (active == 0) continue;
          const index_t blk_y_rowid = g.csc_tile_row[t];
          const Word* col_masks = g.csc_mask(t);
          Word contrib = 0;
          for_each_set_bit(active, [&](int lj) { contrib |= col_masks[lj]; });
          const Word sum = contrib & static_cast<Word>(~m.words[blk_y_rowid]);
          if (sum != 0) atomic_or(&y.words[blk_y_rowid], sum);
        }
      },
      pool, /*chunk=*/4);
}

// ---------------------------------------------------------------------
// K2: Push-CSR (paper Alg. 6). Matrix-driven: one task per tile row; every
// tile whose frontier word is non-empty tests each still-unvisited local
// row against the frontier word (AND) and accumulates hits (OR). No
// atomics: each tile row is owned by exactly one task.
// ---------------------------------------------------------------------
template <int NT>
void kernel_push_csr(const BitTileGraph<NT>& g, const BitVector<NT>& x,
                     const BitVector<NT>& m, BitVector<NT>& y,
                     ThreadPool* pool) {
  using Word = bitword_t<NT>;
  parallel_for(
      g.tile_n,
      [&](index_t tr) {
        const Word unvisited =
            static_cast<Word>(~m.words[tr]) & m.valid_mask(tr);
        if (unvisited == 0) return;  // whole tile row already done
        Word out = 0;
        for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1];
             ++t) {
          const Word xw = x.words[g.csr_tile_col[t]];
          if (xw == 0) continue;  // empty frontier tile: skip payload
          const Word* row_masks =
              &g.csr_masks[static_cast<std::size_t>(t) * NT];
          // Restrict to rows that are unvisited, not already found, and
          // actually present in this tile (summary word).
          const Word remaining =
              unvisited & static_cast<Word>(~out) & g.csr_row_summary[t];
          for_each_set_bit(remaining, [&](int lr) {
            if (row_masks[lr] & xw) out |= msb_bit<Word>(lr);
          });
        }
        if (out != 0) y.words[tr] |= out;
      },
      pool, /*chunk=*/16);
}

// ---------------------------------------------------------------------
// K3: Pull-CSC (paper Alg. 7). Unvisited-driven: each still-unvisited
// vertex scans its in-neighborhood masks against the visited vector and
// stops at the first hit (the paper's warp-synchronized early exit).
// Reads the row-oriented masks; identical to the paper's A1 columns on
// undirected graphs (see header note).
// ---------------------------------------------------------------------
template <int NT>
void kernel_pull_csc(const BitTileGraph<NT>& g, const BitVector<NT>& m,
                     BitVector<NT>& y, ThreadPool* pool) {
  using Word = bitword_t<NT>;
  parallel_for(
      g.tile_n,
      [&](index_t tr) {
        Word remaining = static_cast<Word>(~m.words[tr]) & m.valid_mask(tr);
        if (remaining == 0) return;
        Word out = 0;
        for (offset_t t = g.csr_tile_ptr[tr];
             t < g.csr_tile_ptr[tr + 1] && remaining != 0; ++t) {
          const Word mw = m.words[g.csr_tile_col[t]];
          if (mw == 0) continue;
          const Word* row_masks =
              &g.csr_masks[static_cast<std::size_t>(t) * NT];
          Word found = 0;
          for_each_set_bit(remaining & g.csr_row_summary[t], [&](int lu) {
            if (row_masks[lu] & mw) found |= msb_bit<Word>(lu);
          });
          out |= found;
          remaining &= static_cast<Word>(~found);  // early exit per vertex
        }
        if (out != 0) y.words[tr] |= out;
      },
      pool, /*chunk=*/16);
}

// ---------------------------------------------------------------------
// Side pass for the extracted very-sparse part: frontier-driven expansion
// over the source-indexed edge list, merged into the same output vector.
// Cost is proportional to the frontier's extracted out-edges, not to the
// whole side matrix.
// ---------------------------------------------------------------------
template <int NT>
void side_edges_pass(const BitTileGraph<NT>& g, const BitVector<NT>& x,
                     const BitVector<NT>& m, BitVector<NT>& y,
                     ThreadPool* pool) {
  using Word = bitword_t<NT>;
  if (g.side_dst.empty()) return;
  parallel_for(
      x.num_words(),
      [&](index_t s) {
        const Word xw = x.words[s];
        if (xw == 0) return;
        std::uint64_t relaxed = 0;
        for_each_set_bit(xw, [&](int b) {
          const index_t u = s * NT + b;
          relaxed +=
              static_cast<std::uint64_t>(g.side_ptr[u + 1] - g.side_ptr[u]);
          for (offset_t k = g.side_ptr[u]; k < g.side_ptr[u + 1]; ++k) {
            const index_t dst = g.side_dst[k];
            if (!m.test(dst)) {
              atomic_or(&y.words[dst / NT], msb_bit<Word>(dst % NT));
            }
          }
        });
        obs::counter_add(obs::Counter::kBfsSideEdges, relaxed);
      },
      pool, /*chunk=*/64);
}

template <int NT>
BfsKernel select_kernel(const TileBfsConfig& cfg, index_t n,
                        index_t frontier_size, index_t frontier_words,
                        index_t total_words, index_t unvisited) {
  const bool k1 = cfg.kernel_mask & 1u;
  const bool k2 = cfg.kernel_mask & 2u;
  const bool k3 = cfg.kernel_mask & 4u;
  const double density = static_cast<double>(frontier_size) / n;
  const double unvisited_frac = static_cast<double>(unvisited) / n;
  if (k3 && unvisited_frac <= cfg.pull_unvisited_frac &&
      static_cast<double>(unvisited) <=
          cfg.pull_frontier_factor * static_cast<double>(frontier_size)) {
    return BfsKernel::kPullCsc;
  }
  if (k2 && density >= cfg.push_csr_sparsity &&
      static_cast<double>(frontier_words) >=
          cfg.push_csr_frontier_words_frac * static_cast<double>(total_words)) {
    return BfsKernel::kPushCsr;
  }
  if (k1) return BfsKernel::kPushCsc;
  if (k2) return BfsKernel::kPushCsr;
  if (k3) return BfsKernel::kPullCsc;
  throw std::invalid_argument("TileBfsConfig.kernel_mask must enable a kernel");
}

template <int NT>
BfsResult run_bfs(const BitTileGraph<NT>& g, index_t source,
                  const TileBfsConfig& cfg, ThreadPool* pool) {
  using Word = bitword_t<NT>;
  assert(source >= 0 && source < g.n);
  Timer total;
  BfsResult result;
  result.levels.assign(g.n, -1);
  result.levels[source] = 0;

  BitVector<NT> x(g.n);  // current frontier
  BitVector<NT> m(g.n);  // visited mask (includes the frontier)
  BitVector<NT> y(g.n);  // next frontier
  x.set(source);
  m.set(source);
  index_t visited = 1;
  index_t frontier_size = 1;   // carried across iterations (|x| = last |y|)
  index_t frontier_words = 1;  // non-empty words in x, carried the same way

  for (int level = 1;; ++level) {
    const index_t unvisited = g.n - visited;
    if (frontier_size == 0 || unvisited == 0) break;
    const BfsKernel kernel = select_kernel<NT>(
        cfg, g.n, frontier_size, frontier_words, x.num_words(), unvisited);

    Timer iter;
    obs::TraceSpan span("bfs/iteration", "bfs", bfs_kernel_name(kernel));
    y.clear();
    switch (kernel) {
      case BfsKernel::kPushCsc: {
        obs::counter_add(obs::Counter::kBfsIterPushCsc, 1);
        const std::vector<index_t> slots = x.nonempty_slots();
        kernel_push_csc(g, x, m, y, slots, pool);
        break;
      }
      case BfsKernel::kPushCsr:
        obs::counter_add(obs::Counter::kBfsIterPushCsr, 1);
        kernel_push_csr(g, x, m, y, pool);
        break;
      case BfsKernel::kPullCsc:
        obs::counter_add(obs::Counter::kBfsIterPullCsc, 1);
        kernel_pull_csc(g, m, y, pool);
        break;
    }
    side_edges_pass(g, x, m, y, pool);

    // Assign levels and fold the new frontier into the visited mask. Each
    // chunk owns a disjoint word range (level slots don't overlap across
    // words), so the only shared state is the two reduction counters.
    struct Tally {
      index_t discovered = 0;
      index_t words = 0;
    };
    const Tally tally = parallel_reduce<Tally>(
        y.num_words(), Tally{},
        [&](index_t s) {
          Tally t;
          const Word w = y.words[s];
          if (w == 0) return t;
          ++t.words;
          for_each_set_bit(w, [&](int b) {
            result.levels[s * NT + b] = level;
            ++t.discovered;
          });
          m.words[s] |= w;
          return t;
        },
        [](Tally a, Tally b) {
          a.discovered += b.discovered;
          a.words += b.words;
          return a;
        },
        pool, /*chunk=*/512);
    const index_t discovered = tally.discovered;
    const index_t discovered_words = tally.words;
    if (cfg.record_iterations) {
      result.iterations.push_back(
          {level, kernel, frontier_size, unvisited,
           static_cast<double>(frontier_size) / g.n,
           static_cast<double>(unvisited) / g.n, iter.elapsed_ms()});
    }
    if (discovered == 0) break;
    visited += discovered;
    frontier_size = discovered;
    frontier_words = discovered_words;
    std::swap(x.words, y.words);
  }
  result.total_ms = total.elapsed_ms();
  return result;
}

}  // namespace

struct TileBfs::Impl {
  TileBfsConfig cfg;
  ThreadPool* pool = nullptr;
  int nt = 32;
  // Exactly one of the two graphs is populated, per the order rule.
  std::unique_ptr<BitTileGraph<32>> g32;
  std::unique_ptr<BitTileGraph<64>> g64;
};

TileBfs::TileBfs(const Csr<value_t>& a, TileBfsConfig cfg, ThreadPool* pool)
    : impl_(std::make_unique<Impl>()) {
  if (a.rows != a.cols) {
    throw std::invalid_argument("TileBfs requires a square adjacency matrix");
  }
  if ((cfg.kernel_mask & 7u) == 0) {
    throw std::invalid_argument("TileBfsConfig.kernel_mask must enable a kernel");
  }
  impl_->cfg = cfg;
  impl_->pool = pool;
  Timer t;
  obs::TraceSpan span("bfs/preprocess", "convert");
  if (a.rows > cfg.order_threshold) {
    impl_->nt = 64;
    impl_->g64 = std::make_unique<BitTileGraph<64>>(
        BitTileGraph<64>::from_csr(a, cfg.extract_threshold));
  } else {
    impl_->nt = 32;
    impl_->g32 = std::make_unique<BitTileGraph<32>>(
        BitTileGraph<32>::from_csr(a, cfg.extract_threshold));
  }
  preprocess_ms_ = t.elapsed_ms();
}

TileBfs::~TileBfs() = default;
TileBfs::TileBfs(TileBfs&&) noexcept = default;
TileBfs& TileBfs::operator=(TileBfs&&) noexcept = default;

BfsResult TileBfs::run(index_t source) const {
  if (impl_->g64) {
    return run_bfs(*impl_->g64, source, impl_->cfg, impl_->pool);
  }
  return run_bfs(*impl_->g32, source, impl_->cfg, impl_->pool);
}

int TileBfs::tile_size() const { return impl_->nt; }

offset_t TileBfs::edges() const {
  return impl_->g64 ? impl_->g64->edges : impl_->g32->edges;
}

index_t TileBfs::num_tiles() const {
  return impl_->g64 ? impl_->g64->num_tiles() : impl_->g32->num_tiles();
}

offset_t TileBfs::side_edge_count() const {
  return impl_->g64 ? impl_->g64->side_edge_count()
                    : impl_->g32->side_edge_count();
}

}  // namespace tilespmspv
