// Multi-source reachability on a directed web graph, implemented directly
// on the SpMSpV primitive (the GraphBLAS pattern the paper's intro cites):
// the frontier is a sparse vector, one SpMSpV per step expands it, and a
// visited mask accumulates. This is BFS "in the language of linear
// algebra", written against the library's public API rather than the
// built-in TileBfs — demonstrating how downstream graph algorithms
// (betweenness centrality, RCM ordering, ...) would compose the primitive.
#include <cstdio>
#include <unordered_set>

#include "core/spmspv.hpp"
#include "gen/powerlaw.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

int main() {
  // Directed scale-free graph; A[t][s] = 1 encodes the link s -> t, so
  // y = A x expands a frontier x one hop forward.
  PowerlawParams prm;
  prm.n = 30000;
  prm.avg_degree = 10;
  prm.locality = 0.75;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_powerlaw(prm, /*seed=*/3));
  std::printf("web graph analog: %d pages, %lld links\n", a.rows,
              static_cast<long long>(a.nnz()));

  SpmspvOperator<value_t> op(a);

  // Seed set: a handful of "entry pages".
  const std::vector<index_t> seeds = {0, 101, 20202, 29999};
  SparseVec<value_t> frontier(a.rows);
  std::unordered_set<index_t> visited;
  for (index_t s : seeds) {
    frontier.push(s, 1.0);
    visited.insert(s);
  }

  Timer t;
  int rounds = 0;
  while (frontier.nnz() > 0) {
    SparseVec<value_t> next = op.multiply(frontier);
    // Keep only newly discovered vertices; values are irrelevant for
    // reachability, so reset them to 1 (the boolean semiring's "true").
    SparseVec<value_t> fresh(a.rows);
    for (index_t i : next.idx) {
      if (visited.insert(i).second) fresh.push(i, 1.0);
    }
    frontier = std::move(fresh);
    ++rounds;
    if (rounds <= 6 || frontier.nnz() > 0) {
      std::printf("  round %2d: frontier %d, reached %zu\n", rounds,
                  frontier.nnz(), visited.size());
    }
  }
  std::printf("reachable set: %zu of %d pages (%.1f%%) in %d rounds, %.2f ms\n",
              visited.size(), a.rows,
              100.0 * static_cast<double>(visited.size()) / a.rows,
              rounds, t.elapsed_ms());
  return 0;
}
