// Quickstart: build a sparse matrix, multiply it by a sparse vector with
// TileSpMSpV, and run a BFS — the two primitives of the library in ~40
// lines of user code.
#include <cstdio>

#include "baselines/csr_spmv.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "gen/rmat.hpp"
#include "gen/vector_gen.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

int main() {
  // 1. A graph / matrix. Any Coo source works: the generators here, or
  //    read_matrix_market_file() for a SuiteSparse .mtx file.
  RmatParams prm;
  prm.scale = 13;  // 8192 vertices
  prm.edge_factor = 16;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_rmat(prm, /*seed=*/1));
  std::printf("matrix: %d x %d, %lld nonzeros\n", a.rows, a.cols,
              static_cast<long long>(a.nnz()));

  // 2. SpMSpV: preprocess once, multiply many sparse vectors.
  SpmspvOperator<value_t> op(a);
  SparseVec<value_t> x = gen_sparse_vector(a.cols, /*sparsity=*/0.001, 1);
  Timer t;
  SparseVec<value_t> y = op.multiply(x);
  std::printf("TileSpMSpV: |x|=%d nonzeros -> |y|=%d nonzeros in %.3f ms\n",
              x.nnz(), y.nnz(), t.elapsed_ms());

  // Sanity: same result as a dense-vector SpMV.
  SparseVec<value_t> y_ref = csr_spmv(a, x);
  std::printf("matches CSR SpMV: %s\n",
              approx_equal(y, y_ref) ? "yes" : "NO (bug!)");

  // 3. BFS: preprocess into bitmask tiles, traverse from any source.
  TileBfs bfs(a);
  BfsResult r = bfs.run(/*source=*/0);
  std::printf("TileBFS: visited %d of %d vertices in %zu levels, %.3f ms\n",
              r.visited_count(), a.rows, r.iterations.size(), r.total_ms);
  for (const auto& it : r.iterations) {
    std::printf("  level %d: kernel=%s frontier=%d unvisited=%d (%.3f ms)\n",
                it.level, bfs_kernel_name(it.kernel), it.frontier_size,
                it.unvisited, it.ms);
  }
  return 0;
}
