// Road-network traversal: the workload class the paper's intro motivates
// (roadNet-TX / europe.osm). Road networks have huge diameter and tiny
// degree, so the BFS frontier stays narrow for hundreds of levels — the
// regime where the tiled bitmask frontier and the per-iteration kernel
// selector matter most. The example compares TileBFS against the
// direction-optimizing baseline and prints the kernel schedule.
#include <cstdio>
#include <map>

#include "baselines/dobfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/grid.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

int main() {
  // A thinned 2D grid is the standard synthetic analog of a road network.
  Csr<value_t> g =
      Csr<value_t>::from_coo(gen_grid2d(400, 300, 0.85, /*seed=*/7));
  std::printf("road network analog: %d intersections, %lld road segments\n",
              g.rows, static_cast<long long>(g.nnz() / 2));

  TileBfs bfs(g);
  std::printf("tile size: %d, tiles stored: %d, preprocessing: %.2f ms\n",
              bfs.tile_size(), bfs.num_tiles(), bfs.preprocess_ms());

  const index_t source = 0;
  BfsResult r = bfs.run(source);
  std::printf("TileBFS: %d vertices reached over %zu levels in %.2f ms\n",
              r.visited_count(), r.iterations.size(), r.total_ms);

  // Kernel schedule summary: how often each direction was chosen.
  std::map<const char*, int> kernel_counts;
  for (const auto& it : r.iterations) {
    ++kernel_counts[bfs_kernel_name(it.kernel)];
  }
  for (const auto& [name, count] : kernel_counts) {
    std::printf("  %-8s selected in %d iterations\n", name, count);
  }

  // Compare with the Gunrock-style direction-optimizing baseline.
  Timer t;
  const auto base_levels = dobfs(g, g, source);
  std::printf("direction-optimizing baseline: %.2f ms\n", t.elapsed_ms());
  std::printf("level arrays agree: %s\n",
              r.levels == base_levels ? "yes" : "NO (bug!)");

  // Eccentricity estimate from the traversal (max level).
  index_t max_level = 0;
  for (index_t l : r.levels) max_level = std::max(max_level, l);
  std::printf("eccentricity of source %d: %d hops\n", source, max_level);
  return 0;
}
