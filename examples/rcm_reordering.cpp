// Reverse Cuthill-McKee reordering — the third application the paper's
// introduction names as SpMSpV-accelerated. A band matrix is scrambled by
// a random permutation, RCM (driven by the library's TileBFS level
// structure) recovers a narrow band, and the effect is shown directly on
// the tiled format: far fewer non-empty tiles, which is exactly why
// reordering matters for tiled kernels.
#include <cstdio>
#include <numeric>

#include "apps/rcm.hpp"
#include "gen/banded.hpp"
#include "tile/tile_matrix.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

int main() {
  // A 20K FEM-style band matrix...
  BandedParams prm;
  prm.n = 20000;
  prm.block = 6;
  prm.band_blocks = 4;
  Csr<value_t> band = Csr<value_t>::from_coo(gen_banded(prm, /*seed=*/9));

  // ...scrambled by a random symmetric permutation.
  Prng rng(10);
  std::vector<index_t> shuffle(prm.n);
  std::iota(shuffle.begin(), shuffle.end(), index_t{0});
  for (index_t i = prm.n - 1; i > 0; --i) {
    std::swap(shuffle[i], shuffle[rng.next_below(i + 1)]);
  }
  Csr<value_t> scrambled = permute_symmetric(band, shuffle);

  auto report = [](const char* label, const Csr<value_t>& m) {
    const TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(m, 16);
    std::printf("%-10s bandwidth %6d, non-empty 16x16 tiles %7d "
                "(occupancy %.4f%%)\n",
                label, bandwidth(m), t.num_tiles(),
                100.0 * t.tile_occupancy());
  };

  std::printf("matrix: %d x %d, %lld nonzeros\n", band.rows, band.cols,
              static_cast<long long>(band.nnz()));
  report("original", band);
  report("scrambled", scrambled);

  Timer t;
  const std::vector<index_t> perm = rcm_ordering(scrambled);
  const double rcm_ms = t.elapsed_ms();
  Csr<value_t> restored = permute_symmetric(scrambled, perm);
  report("RCM", restored);
  std::printf("RCM ordering computed in %.2f ms "
              "(pseudo-peripheral search + BFS levels + degree sort)\n",
              rcm_ms);
  return 0;
}
