// Route planning on a weighted road network: single-source shortest paths
// via min-plus semiring SpMSpV (apps/sssp.hpp) — the tropical-algebra
// counterpart of the BFS examples, showing the same tiled storage serving
// a different semiring.
#include <cmath>
#include <cstdio>
#include <map>

#include "apps/sssp.hpp"
#include "gen/grid.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

int main() {
  // A thinned grid road network with travel-time weights: each segment
  // gets a random speed, so shortest paths are not just hop counts.
  Coo<value_t> roads = gen_grid2d(250, 200, 0.85, /*seed=*/21);
  Prng rng(22);
  for (auto& w : roads.vals) {
    w = rng.next_double(0.5, 3.0);  // minutes per segment
  }
  // Travel times must be symmetric per segment: rebuild the upper
  // triangle from the lower to keep A == A^T numerically.
  {
    std::map<std::pair<index_t, index_t>, value_t> canon;
    for (index_t i = 0; i < roads.nnz(); ++i) {
      const auto key = std::minmax(roads.row_idx[i], roads.col_idx[i]);
      auto [it, inserted] = canon.emplace(key, roads.vals[i]);
      roads.vals[i] = it->second;
    }
  }
  Csr<value_t> a = Csr<value_t>::from_coo(roads);
  std::printf("road network: %d intersections, %lld directed segments\n",
              a.rows, static_cast<long long>(a.nnz()));

  const index_t depot = 0;
  Timer t;
  const SsspResult r = sssp(a, depot);
  const double ms = t.elapsed_ms();

  index_t reachable = 0;
  double max_time = 0.0, sum_time = 0.0;
  for (double d : r.dist) {
    if (!std::isinf(d)) {
      ++reachable;
      max_time = std::max(max_time, d);
      sum_time += d;
    }
  }
  std::printf("SSSP from depot %d: %d reachable intersections, "
              "%d relaxation rounds, %.2f ms\n",
              depot, reachable, r.rounds, ms);
  std::printf("farthest delivery: %.1f minutes; mean: %.1f minutes\n",
              max_time, sum_time / reachable);

  // Service-area query: how many intersections within 30 minutes?
  index_t within = 0;
  for (double d : r.dist) {
    if (d <= 30.0) ++within;
  }
  std::printf("30-minute service area covers %d intersections (%.1f%%)\n",
              within, 100.0 * within / a.rows);
  return 0;
}
