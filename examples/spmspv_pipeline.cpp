// Sparse inference pipeline: chained SpMSpV through several sparse weight
// matrices — the "sparse DNN / machine-learning" use case the paper's
// abstract names. Activations stay sparse end to end (ReLU-style
// thresholding re-sparsifies after every layer), so each layer is one
// SpMSpV with a different matrix; the example also reports how the tiled
// format's occupancy differs per layer.
#include <cstdio>
#include <vector>

#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

int main() {
  // Four sparse layers, 16K wide (RadiX-Net style synthetic sparse DNN).
  const index_t width = 16384;
  const int layers = 4;
  std::vector<SpmspvOperator<value_t>> net;
  net.reserve(layers);
  for (int l = 0; l < layers; ++l) {
    Csr<value_t> w = Csr<value_t>::from_coo(
        gen_erdos_renyi(width, width, 30.0 / width, 1000 + l));
    // Mixed-sign weights, as in a trained network: without cancellation
    // the thresholded activations would densify within two layers.
    for (std::size_t i = 0; i < w.vals.size(); ++i) {
      if (i % 2 == 0) w.vals[i] = -w.vals[i];
    }
    std::printf("layer %d: %lld weights, tile occupancy %.4f%%\n", l,
                static_cast<long long>(w.nnz()),
                100.0 * TileMatrix<value_t>::from_csr(w, 16).tile_occupancy());
    net.emplace_back(w);
  }

  // A sparse input activation (e.g. one-hot-ish feature vector).
  SparseVec<value_t> act = gen_sparse_vector(width, 0.002, 1);
  std::printf("input activations: %d nonzeros\n", act.nnz());

  const double threshold = 0.5;  // ReLU-with-threshold keeps things sparse
  Timer t;
  for (int l = 0; l < layers; ++l) {
    SparseVec<value_t> z = net[l].multiply(act);
    SparseVec<value_t> out(width);
    for (std::size_t k = 0; k < z.idx.size(); ++k) {
      if (z.vals[k] > threshold) out.push(z.idx[k], z.vals[k]);
    }
    std::printf("layer %d: %d -> %d active neurons\n", l, act.nnz(),
                out.nnz());
    act = std::move(out);
    if (act.nnz() == 0) break;
  }
  std::printf("pipeline done in %.3f ms, %d final activations\n",
              t.elapsed_ms(), act.nnz());
  return 0;
}
